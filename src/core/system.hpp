// Common interface for the four trainable systems (GNNDrive and the three
// baselines), so benches can sweep them uniformly.
#pragma once

#include <memory>
#include <string>

#include "graph/dataset.hpp"
#include "gnn/model.hpp"
#include "memsim/host_memory.hpp"
#include "memsim/page_cache.hpp"
#include "sampling/sampler.hpp"
#include "storage/ssd.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

/// Per-experiment environment: one dataset image, one simulated SSD, one
/// host-memory budget and one OS page cache shared by whatever system runs.
struct RunContext {
  const Dataset* dataset = nullptr;
  SsdDevice* ssd = nullptr;
  HostMemory* host_mem = nullptr;
  PageCache* page_cache = nullptr;
  Telemetry* telemetry = nullptr;  ///< optional
};

/// Structured fault/recovery summary for one epoch. All-zero on a clean
/// epoch; populated instead of hanging or aborting when the storage layer
/// injects (or a real backend produces) I/O failures.
struct EpochResult {
  std::uint64_t failed_batches = 0;  ///< abandoned after exhausting retries
  std::uint64_t trained_batches = 0; ///< batches that reached the trainer
  std::uint64_t io_errors = 0;       ///< error CQEs observed (EIO, timeouts)
  std::uint64_t io_retries = 0;      ///< reads re-submitted after a failure
  std::uint64_t io_recovered = 0;    ///< reads that succeeded after >=1 retry
  std::uint64_t io_timeouts = 0;     ///< requests cancelled by the watchdog
  bool ok() const { return failed_batches == 0; }
};

/// Per-epoch outcome. Stage seconds are summed over batches (and threads),
/// so with pipelining their sum can exceed the wall-clock epoch time.
struct EpochStats {
  double epoch_seconds = 0.0;   ///< wall time of the epoch
  double prep_seconds = 0.0;    ///< data preparation (MariusGNN only)
  double sample_seconds = 0.0;  ///< summed sample-stage time
  double extract_seconds = 0.0; ///< summed extract-stage time
  double train_seconds = 0.0;   ///< summed train-stage time
  double loss = 0.0;            ///< mean training loss over the epoch
  double train_accuracy = 0.0;  ///< mini-batch argmax accuracy
  std::uint64_t batches = 0;
  EpochResult result;           ///< fault/recovery summary (zero when clean)
};

/// Knobs shared by every system (the paper's common experimental setup).
struct CommonTrainConfig {
  ModelConfig model;
  SamplerConfig sampler;          ///< fanouts (10,10,10); (10,10,5) for GAT
  std::uint32_t batch_seeds = 8;  ///< paper mini-batch 1000 / kBatchScale
  AdamConfig adam;
  bool sample_only = false;       ///< Fig. 2 "-only" mode: skip extract+train
  std::uint64_t run_seed = 99;
};

class TrainSystem {
 public:
  virtual ~TrainSystem() = default;
  virtual const char* name() const = 0;
  virtual EpochStats run_epoch(std::uint64_t epoch) = 0;
  /// Validation accuracy with the current parameters (off the clock).
  virtual double evaluate() = 0;
};

}  // namespace gnndrive
