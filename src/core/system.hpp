// Common interface for the four trainable systems (GNNDrive and the three
// baselines), so benches can sweep them uniformly.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "graph/dataset.hpp"
#include "gnn/model.hpp"
#include "memsim/host_memory.hpp"
#include "memsim/page_cache.hpp"
#include "sampling/sampler.hpp"
#include "storage/ssd.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

/// Per-experiment environment: one dataset image, one simulated SSD, one
/// host-memory budget and one OS page cache shared by whatever system runs.
struct RunContext {
  const Dataset* dataset = nullptr;
  SsdDevice* ssd = nullptr;
  HostMemory* host_mem = nullptr;
  PageCache* page_cache = nullptr;
  Telemetry* telemetry = nullptr;  ///< optional
};

/// Structured fault/recovery summary for one epoch. All-zero on a clean
/// epoch; populated instead of hanging or aborting when the storage layer
/// injects (or a real backend produces) I/O failures.
struct EpochResult {
  std::uint64_t failed_batches = 0;  ///< abandoned after exhausting retries
  std::uint64_t trained_batches = 0; ///< batches that reached the trainer
  std::uint64_t io_errors = 0;       ///< error CQEs observed (EIO, timeouts)
  std::uint64_t io_retries = 0;      ///< reads re-submitted after a failure
  std::uint64_t io_recovered = 0;    ///< reads that succeeded after >=1 retry
  std::uint64_t io_timeouts = 0;     ///< requests cancelled by the watchdog
  bool ok() const { return failed_batches == 0; }
};

/// Per-stage latency distribution over one epoch (microseconds per batch).
struct StageLatency {
  std::uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// End-of-epoch observability report (see docs/observability.md). Populated
/// by the GNNDrive pipeline on every epoch — the per-batch histograms behind
/// it are relaxed atomics, cheap enough to keep always-on.
struct EpochObs {
  StageLatency sample, extract, train, release;
  std::uint64_t extract_q_max = 0;  ///< deepest the extracting queue got
  std::uint64_t train_q_max = 0;
  std::uint64_t release_q_max = 0;
  std::uint64_t fb_hot_hits = 0;    ///< pinned hot-partition hits this epoch
  std::uint64_t fb_reuse_hits = 0;  ///< feature-buffer reuse hits this epoch
  std::uint64_t fb_wait_hits = 0;   ///< nodes found in-flight this epoch
  std::uint64_t fb_loads = 0;       ///< nodes loaded from SSD this epoch
  std::uint64_t io_segments = 0;    ///< coalesced feature reads issued
  std::uint64_t io_rows = 0;        ///< feature rows delivered by those reads
  /// Mean feature rows per SSD read (1.0 with coalescing off).
  double rows_per_read() const {
    return io_segments > 0 ? static_cast<double>(io_rows) /
                                 static_cast<double>(io_segments)
                           : 0.0;
  }
  /// (hot + reuse + wait) / (hot + reuse + wait + loads); 0 when no lookups
  /// happened.
  double fb_hit_rate() const {
    const double hits = static_cast<double>(fb_hot_hits) +
                        static_cast<double>(fb_reuse_hits) +
                        static_cast<double>(fb_wait_hits);
    const double total = hits + static_cast<double>(fb_loads);
    return total > 0 ? hits / total : 0.0;
  }

  /// Multi-line printable summary for benches and examples.
  std::string format() const {
    std::string out;
    char line[192];
    const auto row = [&](const char* name, const StageLatency& s) {
      std::snprintf(line, sizeof(line),
                    "  %-8s n=%-5llu p50=%9.1fus p95=%9.1fus p99=%9.1fus "
                    "mean=%9.1fus\n",
                    name, static_cast<unsigned long long>(s.count), s.p50_us,
                    s.p95_us, s.p99_us, s.mean_us);
      out += line;
    };
    row("sample", sample);
    row("extract", extract);
    row("train", train);
    row("release", release);
    std::snprintf(line, sizeof(line),
                  "  queues   extract_q max=%llu train_q max=%llu "
                  "release_q max=%llu\n",
                  static_cast<unsigned long long>(extract_q_max),
                  static_cast<unsigned long long>(train_q_max),
                  static_cast<unsigned long long>(release_q_max));
    out += line;
    std::snprintf(line, sizeof(line),
                  "  fbuffer  hit-rate=%.1f%% (hot=%llu reuse=%llu wait=%llu "
                  "loads=%llu)\n",
                  100.0 * fb_hit_rate(),
                  static_cast<unsigned long long>(fb_hot_hits),
                  static_cast<unsigned long long>(fb_reuse_hits),
                  static_cast<unsigned long long>(fb_wait_hits),
                  static_cast<unsigned long long>(fb_loads));
    out += line;
    std::snprintf(line, sizeof(line),
                  "  coalesce reads=%llu rows=%llu rows/read=%.2f\n",
                  static_cast<unsigned long long>(io_segments),
                  static_cast<unsigned long long>(io_rows), rows_per_read());
    out += line;
    return out;
  }
};

/// Per-epoch outcome. Stage seconds are summed over batches (and threads),
/// so with pipelining their sum can exceed the wall-clock epoch time.
struct EpochStats {
  double epoch_seconds = 0.0;   ///< wall time of the epoch
  double prep_seconds = 0.0;    ///< data preparation (MariusGNN only)
  double sample_seconds = 0.0;  ///< summed sample-stage time
  double extract_seconds = 0.0; ///< summed extract-stage time
  double train_seconds = 0.0;   ///< summed train-stage time
  double loss = 0.0;            ///< mean training loss over the epoch
  double train_accuracy = 0.0;  ///< mini-batch argmax accuracy
  std::uint64_t batches = 0;
  /// True when the epoch drained early because request_stop() was called;
  /// the cursor then points at the first untrained batch of this epoch.
  bool interrupted = false;
  /// Per-trained-batch losses in training order, filled only when
  /// GnnDriveConfig::record_batch_losses is set (crash-matrix tests compare
  /// these trajectories across interrupted and uninterrupted runs).
  std::vector<double> batch_losses;
  EpochResult result;           ///< fault/recovery summary (zero when clean)
  EpochObs obs;                 ///< latency/queue/buffer report (GNNDrive)
};

/// Knobs shared by every system (the paper's common experimental setup).
struct CommonTrainConfig {
  ModelConfig model;
  SamplerConfig sampler;          ///< fanouts (10,10,10); (10,10,5) for GAT
  std::uint32_t batch_seeds = 8;  ///< paper mini-batch 1000 / kBatchScale
  AdamConfig adam;
  bool sample_only = false;       ///< Fig. 2 "-only" mode: skip extract+train
  std::uint64_t run_seed = 99;
};

class TrainSystem {
 public:
  virtual ~TrainSystem() = default;
  virtual const char* name() const = 0;
  virtual EpochStats run_epoch(std::uint64_t epoch) = 0;
  /// Validation accuracy with the current parameters (off the clock).
  virtual double evaluate() = 0;
};

}  // namespace gnndrive
