#include "core/extract.hpp"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "gpu/gpu.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/telemetry.hpp"

namespace gnndrive {

namespace {

bool transient_error(std::int32_t res) {
  return res == -EIO || res == -ETIMEDOUT;
}

std::uint64_t elapsed_ns(TimePoint begin, TimePoint end) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

}  // namespace

std::uint32_t staging_row_bytes_for(const CoalesceConfig& coalesce,
                                    std::uint32_t covering_row_bytes) {
  if (!coalesce.enabled) return covering_row_bytes;
  const auto rounded = static_cast<std::uint32_t>(
      round_up(std::max(coalesce.max_coalesce_bytes, 1u), kSectorSize));
  return std::max(rounded, covering_row_bytes);
}

std::uint32_t staging_rows_for(const CoalesceConfig& coalesce,
                               std::uint32_t ring_depth) {
  if (!coalesce.enabled) return std::max(ring_depth, 1u);
  // Extraction latency scales with in-flight depth well past the device's
  // channel count (requests overlap their base latency), so the pool only
  // shrinks when wide segment rows would blow the pinned-staging budget:
  // keep ~6 MiB of rows per extractor, but never fewer than 64 in flight.
  // (6 MiB keeps four extractors' pools inside the bench's default host
  // budget so coalescing never costs an extractor at the default caps.)
  const std::uint32_t row_bytes = static_cast<std::uint32_t>(
      round_up(std::max(coalesce.max_coalesce_bytes, 1u), kSectorSize));
  const std::uint32_t budget_rows =
      static_cast<std::uint32_t>((6u << 20) / std::max(row_bytes, 1u));
  return std::min(std::max(budget_rows, 64u), std::max(ring_depth, 1u));
}

SegmentPlan plan_segments(const std::vector<std::uint32_t>& load_idx,
                          const std::vector<NodeId>& nodes,
                          const OnDiskLayout& lay, std::uint32_t row_bytes,
                          std::uint32_t max_bytes, std::uint32_t max_rows,
                          std::uint32_t max_gap_bytes) {
  GD_CHECK_MSG(max_rows >= 1, "plan_segments needs max_rows >= 1");
  SegmentPlan plan;
  plan.rows.reserve(load_idx.size());
  if (load_idx.empty()) return plan;

  // Sorted run over disk offsets. Distinct nodes have distinct offsets
  // (layout plans are bijections, so this holds for packed stores too) and
  // the order is total for a triaged (deduplicated) load set.
  struct Item {
    std::uint64_t off;
    std::uint32_t load_pos;
  };
  std::vector<Item> items;
  items.reserve(load_idx.size());
  for (std::uint32_t p = 0; p < load_idx.size(); ++p) {
    items.push_back({lay.feature_offset_of(nodes[load_idx[p]]), p});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.off < b.off; });

  // Worst-case covering range of a single row over any sector phase.
  const std::uint64_t worst_single =
      round_up(row_bytes, kSectorSize) +
      (row_bytes % kSectorSize == 0 ? 0 : kSectorSize);
  GD_CHECK_MSG(worst_single <= max_bytes,
               "max_coalesce_bytes below one covering row");

  SegmentPlan::Segment seg;
  std::uint64_t seg_end = 0;  // exclusive end of the current segment
  const auto flush = [&] {
    if (seg.num_rows == 0) return;
    seg.len = static_cast<std::uint32_t>(seg_end - seg.base);
    plan.segments.push_back(seg);
  };
  for (const Item& it : items) {
    const std::uint64_t cover_begin = round_down(it.off, kSectorSize);
    const std::uint64_t cover_end = round_up(it.off + row_bytes, kSectorSize);
    const bool fits =
        seg.num_rows > 0 && seg.num_rows < max_rows &&
        cover_begin <= seg_end + max_gap_bytes &&
        std::max(cover_end, seg_end) - seg.base <= max_bytes;
    if (!fits) {
      flush();
      seg = SegmentPlan::Segment{};
      seg.base = cover_begin;
      seg.first_row = static_cast<std::uint32_t>(plan.rows.size());
      seg_end = cover_begin;
    }
    seg_end = std::max(seg_end, cover_end);
    plan.rows.push_back(
        {it.load_pos, static_cast<std::uint32_t>(it.off - seg.base)});
    ++seg.num_rows;
  }
  flush();
  return plan;
}

void triage_batch(FeatureBuffer& fb, SampledBatch& batch,
                  std::vector<std::uint32_t>& wait_idx,
                  std::vector<std::uint32_t>& load_idx, FbClient client) {
  const std::size_t n = batch.nodes.size();
  if (fb.hot_sealed()) {
    // Hot fast path: pinned nodes resolve lock-free through the sealed
    // hot map — no slot allocation, no reference, no buffer lock. Only the
    // cold residue takes the batched lock below.
    std::vector<NodeId> cold_nodes;
    std::vector<std::uint32_t> cold_pos;
    cold_nodes.reserve(n);
    cold_pos.reserve(n);
    std::uint64_t hot = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const SlotId slot = fb.hot_slot(batch.nodes[i]);
      if (slot != kNoSlot) {
        batch.alias[i] = slot;
        ++hot;
      } else {
        cold_nodes.push_back(batch.nodes[i]);
        cold_pos.push_back(i);
      }
    }
    fb.record_hot_hits(hot, client);
    std::vector<FeatureBuffer::CheckResult> results(cold_nodes.size());
    fb.check_and_ref_batch(cold_nodes.data(), cold_nodes.size(),
                           results.data(), client);
    for (std::uint32_t c = 0; c < cold_nodes.size(); ++c) {
      const std::uint32_t i = cold_pos[c];
      switch (results[c].status) {
        case FeatureBuffer::CheckStatus::kReady:
          batch.alias[i] = results[c].slot;
          break;
        case FeatureBuffer::CheckStatus::kInFlight:
          wait_idx.push_back(i);
          break;
        case FeatureBuffer::CheckStatus::kMustLoad:
          load_idx.push_back(i);
          break;
      }
    }
    return;
  }
  std::vector<FeatureBuffer::CheckResult> results(n);
  fb.check_and_ref_batch(batch.nodes.data(), n, results.data(), client);
  for (std::uint32_t i = 0; i < n; ++i) {
    switch (results[i].status) {
      case FeatureBuffer::CheckStatus::kReady:
        batch.alias[i] = results[i].slot;
        break;
      case FeatureBuffer::CheckStatus::kInFlight:
        wait_idx.push_back(i);
        break;
      case FeatureBuffer::CheckStatus::kMustLoad:
        load_idx.push_back(i);
        break;
    }
  }
}

bool resolve_wait_list(FeatureBuffer& fb, SampledBatch& batch,
                       const std::vector<std::uint32_t>& wait_idx,
                       Duration timeout) {
  for (std::uint32_t i : wait_idx) {
    const auto slot = fb.wait_ready(batch.nodes[i], timeout);
    if (!slot.has_value() || *slot == kNoSlot) return false;
    batch.alias[i] = *slot;
  }
  return true;
}

bool extract_load_set(SampledBatch& batch,
                      const std::vector<std::uint32_t>& load_idx,
                      const ExtractEnv& env, const ExtractPolicy& policy,
                      const ExtractMetricHooks& hooks,
                      ExtractCounters& counters, ExtractTrace* trace) {
  FeatureBuffer& fb = *env.fb;
  const OnDiskLayout& lay = *env.layout;
  const std::uint32_t row_bytes = env.row_bytes;
  const bool tracing = trace != nullptr && trace->tracing;

  const CoalesceConfig& co = policy.coalesce;
  const std::uint32_t max_bytes = env.staging_row_bytes;
  const std::uint32_t max_rows = co.enabled ? co.max_rows_per_read : 1;
  const std::uint32_t max_gap = co.enabled ? co.max_gap_bytes : 0;
  const SegmentPlan plan =
      plan_segments(load_idx, batch.nodes, lay, row_bytes, max_bytes,
                    max_rows, max_gap);
  const std::size_t n_seg = plan.segments.size();

  // Staging rows recycle through this tracker; GPU scatter callbacks touch
  // it from the DMA thread, so every field mutation happens under `m` and
  // notifications stay under the lock (the waiter owns this stack frame and
  // may destroy it the moment its predicate holds).
  struct TransferTracker {
    std::mutex m;
    std::condition_variable cv;
    std::vector<unsigned> free_rows;
    std::vector<std::uint32_t> rows_left;  ///< pending scatters per segment
    std::size_t transfers_done = 0;
  } tracker;
  for (unsigned r = 0; r < env.staging_rows; ++r) {
    tracker.free_rows.push_back(r);
  }
  tracker.rows_left.resize(n_seg, 0);

  std::vector<unsigned> row_of(n_seg, 0);
  std::vector<std::uint32_t> attempts(n_seg, 0);
  struct RetryEntry {
    TimePoint due;
    std::size_t s;
  };
  std::vector<RetryEntry> retries;  // segments sitting out a backoff delay

  std::size_t submitted = 0;
  std::size_t resolved = 0;  // segments that reached a terminal state
  std::size_t inflight = 0;
  std::size_t transfers_started = 0;  // row scatters handed to the GPU/CPU
  bool failed = false;

  // Scratch reused per segment for the batched slot allocation.
  std::vector<NodeId> seg_nodes;
  std::vector<SlotId> seg_slots;

  const auto submit_segment = [&](std::size_t s) {
    const TimePoint t = tracing ? Clock::now() : TimePoint{};
    const SegmentPlan::Segment& seg = plan.segments[s];
    GD_CHECK(seg.len <= env.staging_row_bytes);
    std::uint8_t* dst =
        env.staging_base +
        static_cast<std::uint64_t>(row_of[s]) * env.staging_row_bytes;
    env.ring->prep_read(seg.base, seg.len, dst, s);
    env.ring->submit();
    ++inflight;
    if (tracing) trace->submit_ns += elapsed_ns(t, Clock::now());
  };
  const auto free_row = [&](unsigned row) {
    {
      std::lock_guard lk(tracker.m);
      tracker.free_rows.push_back(row);
    }
    if (hooks.staging_in_use != nullptr) hooks.staging_in_use->sub(1);
    tracker.cv.notify_all();
  };
  const auto fail_segment = [&](std::size_t s) {
    const SegmentPlan::Segment& seg = plan.segments[s];
    for (std::uint32_t r = seg.first_row; r < seg.first_row + seg.num_rows;
         ++r) {
      fb.mark_failed(batch.nodes[load_idx[plan.rows[r].load_pos]]);
    }
    ++resolved;
  };
  // First unrecoverable failure: resolve everything that is not in flight.
  // Unsubmitted segments hold references but no slots; backoff-pending
  // retries also hand their staging rows back.
  const auto fail_pending = [&] {
    for (std::size_t s = submitted; s < n_seg; ++s) fail_segment(s);
    submitted = n_seg;
    for (const RetryEntry& r : retries) {
      fail_segment(r.s);
      free_row(row_of[r.s]);
    }
    retries.clear();
  };

  while (resolved < n_seg) {
    // Resubmit retries whose backoff elapsed (they keep their rows).
    if (!retries.empty()) {
      const TimePoint now = Clock::now();
      for (std::size_t k = 0; k < retries.size();) {
        if (retries[k].due <= now) {
          submit_segment(retries[k].s);
          retries[k] = retries.back();
          retries.pop_back();
        } else {
          ++k;
        }
      }
    }
    // Top up submissions while staging rows are free.
    while (!failed && submitted < n_seg) {
      unsigned row;
      {
        std::lock_guard lk(tracker.m);
        if (tracker.free_rows.empty()) break;
        row = tracker.free_rows.back();
        tracker.free_rows.pop_back();
      }
      if (hooks.staging_in_use != nullptr) hooks.staging_in_use->add(1);
      const std::size_t s = submitted++;
      row_of[s] = row;
      const SegmentPlan::Segment& seg = plan.segments[s];
      // One buffer-lock take allocates every slot of the segment; may block
      // on the standby list exactly like per-node allocate_slot did.
      seg_nodes.clear();
      for (std::uint32_t r = seg.first_row;
           r < seg.first_row + seg.num_rows; ++r) {
        seg_nodes.push_back(batch.nodes[load_idx[plan.rows[r].load_pos]]);
      }
      seg_slots.resize(seg_nodes.size());
      fb.allocate_slots(seg_nodes.data(), seg_nodes.size(), seg_slots.data());
      for (std::uint32_t r = 0; r < seg.num_rows; ++r) {
        batch.alias[load_idx[plan.rows[seg.first_row + r].load_pos]] =
            seg_slots[r];
      }
      ++counters.segments;
      counters.rows_loaded += seg.num_rows;
      if (hooks.segments != nullptr) hooks.segments->add();
      if (hooks.rows != nullptr) hooks.rows->add(seg.num_rows);
      if (hooks.rows_per_read != nullptr) {
        hooks.rows_per_read->add_us(static_cast<double>(seg.num_rows));
      }
      submit_segment(s);
    }
    if (failed && submitted < n_seg) {
      fail_pending();
      continue;
    }
    if (inflight == 0) {
      if (resolved == n_seg) break;
      if (!retries.empty()) {
        // Only backed-off segments remain runnable from here; wait until
        // the earliest is due OR a transfer frees a staging row that lets
        // blocked submissions proceed (sleeping blind on the due time used
        // to ignore those completions).
        TimePoint earliest = retries[0].due;
        for (const RetryEntry& r : retries) {
          earliest = std::min(earliest, r.due);
        }
        const TimePoint tw = tracing ? Clock::now() : TimePoint{};
        std::unique_lock lk(tracker.m);
        tracker.cv.wait_until(lk, earliest, [&] {
          return submitted < n_seg && !tracker.free_rows.empty();
        });
        if (tracing) trace->copy_wait_ns += elapsed_ns(tw, Clock::now());
        continue;
      }
      // Nothing in flight to reap; wait for a transfer to free a row.
      ScopedTrace st(env.telemetry, TraceCat::kIoWait);
      const TimePoint tw = tracing ? Clock::now() : TimePoint{};
      std::unique_lock lk(tracker.m);
      tracker.cv.wait(lk, [&] { return !tracker.free_rows.empty(); });
      if (tracing) trace->copy_wait_ns += elapsed_ns(tw, Clock::now());
      continue;
    }
    // Reap one segment; on success its rows scatter immediately and overlap
    // the loading of the next segments. The watchdog turns overdue requests
    // into -ETIMEDOUT completions so a stuck device can never wedge this
    // loop.
    const TimePoint tw = tracing ? Clock::now() : TimePoint{};
    const auto cqe_opt = env.ring->wait_cqe_for(policy.poll);
    if (tracing) trace->ssd_wait_ns += elapsed_ns(tw, Clock::now());
    if (!cqe_opt) {
      env.ring->cancel_expired(policy.request_timeout);
      continue;
    }
    --inflight;
    const std::size_t s = cqe_opt->user_data;
    const SegmentPlan::Segment& seg = plan.segments[s];
    if (cqe_opt->res < 0) {
      ++counters.io_errors;
      if (cqe_opt->res == -ETIMEDOUT) ++counters.io_timeouts;
      if (!failed && transient_error(cqe_opt->res) &&
          attempts[s] < policy.max_retries) {
        ++attempts[s];
        ++counters.io_retries;
        if (env.telemetry != nullptr) {
          env.telemetry->count(FaultCounter::kIoRetries);
        }
        const Duration delay =
            policy.backoff ? policy.backoff(attempts[s]) : Duration::zero();
        if (delay <= Duration::zero()) {
          submit_segment(s);  // keeps its staging row
        } else {
          retries.push_back({Clock::now() + delay, s});
        }
        continue;
      }
      if (!failed) {
        const NodeId first =
            batch.nodes[load_idx[plan.rows[seg.first_row].load_pos]];
        if (policy.log_epoch) {
          log_structured(LogLevel::kWarn, policy.fail_event,
                         {kv("batch", policy.batch_id),
                          kv("epoch", policy.epoch), kv("node", first),
                          kv("seg_rows", seg.num_rows),
                          kv("res", cqe_opt->res),
                          kv("attempts", attempts[s])});
        } else {
          log_structured(LogLevel::kWarn, policy.fail_event,
                         {kv("batch", policy.batch_id), kv("node", first),
                          kv("seg_rows", seg.num_rows),
                          kv("res", cqe_opt->res),
                          kv("attempts", attempts[s])});
        }
      }
      fail_segment(s);
      free_row(row_of[s]);
      if (!failed) {
        failed = true;
        fail_pending();
      }
      continue;
    }
    if (attempts[s] > 0) ++counters.io_recovered;
    ++resolved;
    const unsigned row = row_of[s];
    std::uint8_t* const row_base =
        env.staging_base +
        static_cast<std::uint64_t>(row) * env.staging_row_bytes;
    if (env.gpu != nullptr) {
      {
        std::lock_guard lk(tracker.m);
        tracker.rows_left[s] = seg.num_rows;
      }
      transfers_started += seg.num_rows;
      for (std::uint32_t r = seg.first_row;
           r < seg.first_row + seg.num_rows; ++r) {
        const NodeId node = batch.nodes[load_idx[plan.rows[r].load_pos]];
        const SlotId slot = batch.alias[load_idx[plan.rows[r].load_pos]];
        const std::uint8_t* src = row_base + plan.rows[r].seg_offset;
        env.gpu->memcpy_h2d_async(
            fb.slot_data(slot), src, row_bytes,
            [&fb, &tracker, node, row, s,
             g_staging = hooks.staging_in_use] {
              fb.mark_valid(node);
              std::lock_guard lk(tracker.m);
              ++tracker.transfers_done;
              // The staging row recycles only after every row of its
              // segment has left it.
              if (--tracker.rows_left[s] == 0) {
                tracker.free_rows.push_back(row);
                if (g_staging != nullptr) g_staging->sub(1);
              }
              tracker.cv.notify_all();
            });
      }
    } else {
      // CPU training/serving: the feature buffer lives in host memory; the
      // scatter is a plain copy per row, then the staging row recycles.
      for (std::uint32_t r = seg.first_row;
           r < seg.first_row + seg.num_rows; ++r) {
        const NodeId node = batch.nodes[load_idx[plan.rows[r].load_pos]];
        const SlotId slot = batch.alias[load_idx[plan.rows[r].load_pos]];
        std::memcpy(fb.slot_data(slot), row_base + plan.rows[r].seg_offset,
                    row_bytes);
        fb.mark_valid(node);
      }
      transfers_started += seg.num_rows;
      std::lock_guard lk(tracker.m);
      tracker.transfers_done += seg.num_rows;
      tracker.free_rows.push_back(row);
      if (hooks.staging_in_use != nullptr) hooks.staging_in_use->sub(1);
    }
  }

  // Always drain transfers — their callbacks touch this stack frame.
  if (env.gpu != nullptr && transfers_started > 0) {
    ScopedTrace st(env.telemetry, TraceCat::kIoWait);
    const TimePoint tw = tracing ? Clock::now() : TimePoint{};
    std::unique_lock lk(tracker.m);
    tracker.cv.wait(
        lk, [&] { return tracker.transfers_done == transfers_started; });
    if (tracing) trace->copy_wait_ns += elapsed_ns(tw, Clock::now());
  }
  return !failed;
}

}  // namespace gnndrive
