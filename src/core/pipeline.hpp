// GNNDrive's four-stage training pipeline (Sect. 4, Fig. 4).
//
//   samplers --(extracting queue)--> extractors --(training queue)-->
//   trainer --(releasing queue)--> releaser
//
// * A pool of sampler threads generates sampled subgraphs per mini-batch
//   (memory-mapped topology through the OS page cache, like PyG+).
// * Each extractor owns one mini-batch at a time and performs Algorithm 1:
//   reuse pass over the feature buffer, then asynchronous two-phase
//   extraction — io_uring-style direct reads SSD -> staging buffer, and, as
//   each node's read completes, an asynchronous transfer staging -> feature
//   buffer (GPU device memory). No synchronous wait sits on the critical
//   path; loading of the current node overlaps the transfer of the previous.
// * The trainer indexes features in device memory through the node alias
//   list and runs forward/backward/Adam.
// * The releaser drops references; zero-ref slots retire to the standby list.
//
// Queues are bounded (capacities 6 and 4 by default, as evaluated in the
// paper); they carry only node ids/aliases, never feature data. Mini-batch
// reordering arises naturally from the thread pools.
//
// Buffer sizing follows Sect. 4.2: the staging buffer holds Ne x ring_depth
// covering rows of host memory, recycled as transfers retire (bounded by
// "the number of extractors and the number of features to be loaded to GPU
// for each extractor"; Ne additionally auto-shrinks to respect the budgets
// — the paper's "expanded or shrunk by adjusting the number of
// extractors"). The feature buffer reserves at least Ne x Mb device slots
// (deadlock freedom) and is capped by device memory (the paper's
// training-queue-depth restriction).
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "aio/io_ring.hpp"
#include "cache/policy.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/extract.hpp"
#include "core/feature_buffer.hpp"
#include "core/system.hpp"
#include "gpu/gpu.hpp"
#include "util/queue.hpp"

namespace gnndrive {

/// Fault-tolerance knobs for the extract stage (see DESIGN.md "Fault model
/// & recovery"). Defaults are tuned to the simulated device's latencies and
/// add no measurable cost when the storage layer never fails.
struct FaultToleranceConfig {
  /// Per-read retry budget for transient failures (-EIO, -ETIMEDOUT).
  std::uint32_t max_retries = 3;
  /// Exponential backoff before a retry: initial delay, growth factor, and
  /// uniform jitter fraction (0.25 = +-25%), deterministic per extractor.
  double backoff_initial_us = 100.0;
  double backoff_multiplier = 4.0;
  double backoff_jitter = 0.25;
  /// Stage watchdog: an in-flight read older than this is cancelled with
  /// -ETIMEDOUT and retried (or fails the batch once the budget is spent).
  double request_timeout_ms = 250.0;
  /// Upper bound on waiting for a node another extractor is loading; a
  /// loader always resolves its nodes (valid or failed), so this only fires
  /// if that extractor died — the waiter fails its batch instead of hanging.
  double wait_list_timeout_ms = 10000.0;
  /// Abort the epoch on the first unrecoverable batch (benches that want
  /// fail-stop semantics); default is graceful degradation.
  bool fail_fast = false;
};

struct GnnDriveConfig {
  CommonTrainConfig common;
  FaultToleranceConfig fault;
  /// Sorted-run read merging for the extract stage (see core/extract.hpp);
  /// `coalesce.enabled = false` is the per-node-read A/B baseline.
  CoalesceConfig coalesce;
  /// Feature-cache policy (src/cache): `cache.policy = kHotness` profiles
  /// access frequencies with a pre-sampling pass and pins the hot set;
  /// the default kLru is the paper's pure standby-list behaviour.
  CachePolicyConfig cache;
  std::uint32_t num_samplers = 4;
  std::uint32_t num_extractors = 4;  ///< upper bound; may auto-shrink
  std::uint32_t extract_queue_cap = 6;
  std::uint32_t train_queue_cap = 4;
  unsigned ring_depth = 256;
  bool cpu_training = false;
  /// Ablation knob: false routes feature loads through the OS page cache
  /// (buffered I/O) instead of direct I/O, re-creating the memory
  /// contention GNNDrive is designed to avoid. ring_depth = 1 similarly
  /// degrades the asynchronous extraction to effectively synchronous I/O.
  bool direct_io = true;
  /// GPUDirect-Storage mode (the paper's Sect. 4.4 "GPU Direct Access"
  /// future work): feature reads DMA from SSD straight into device memory,
  /// eliminating the host staging buffer entirely. Constraints modeled as
  /// the paper describes them: 4 KiB access granularity (redundant loading
  /// of neighbouring rows is inevitable) and a small device-side bounce
  /// area bounded by the ring depth. GPU training only.
  bool gds_mode = false;
  /// CPU-training kernel-time floor (FLOP/s), analogous to
  /// GpuConfig::gpu_flops_per_s: models per-batch CPU training time on the
  /// target machine's cores, which — unlike this host's single core —
  /// parallelizes across data-parallel subprocesses (Fig. 13's CPU curve).
  /// 0 uses the per-model cpu_slowdown factor instead.
  double cpu_flops_per_s = 0.0;
  /// Feature-buffer size multiplier relative to the default sizing (Fig. 12).
  double feature_buffer_scale = 1.0;
  /// Fraction of currently-free host memory the staging buffer may pin.
  double staging_fraction = 0.5;
  GpuConfig gpu;
  /// Crash-safe checkpoint/restore (src/ckpt, docs/recovery.md). Disabled
  /// by default; when enabled the trainer writes a generation every
  /// `interval_batches` trained batches plus one at each epoch boundary.
  CheckpointConfig ckpt;
  /// Record every trained batch's loss into EpochStats::batch_losses
  /// (training order). Test/debug aid for deterministic-resume assertions.
  bool record_batch_losses = false;
};

class GnnDrive final : public TrainSystem {
 public:
  GnnDrive(const RunContext& ctx, GnnDriveConfig config);
  ~GnnDrive() override;

  const char* name() const override {
    return config_.cpu_training ? "GNNDrive-CPU" : "GNNDrive-GPU";
  }
  EpochStats run_epoch(std::uint64_t epoch) override;
  double evaluate() override;

  GnnModel& model() { return *model_; }
  FeatureBuffer& feature_buffer() { return *feature_buffer_; }
  GpuDevice* gpu() { return gpu_.get(); }
  /// Effective configuration (after model-dim resolution and auto-shrink);
  /// the serving subsystem reads the sampler setup from here.
  const GnnDriveConfig& config() const { return config_; }
  std::uint32_t effective_extractors() const { return num_extractors_; }
  std::uint64_t max_batch_nodes() const { return max_batch_nodes_; }

  // -- Hotness-aware cache policy (src/cache, docs/internals.md) ------------

  /// Where the pinned hot set came from (kNone under policy=lru or before
  /// the first epoch/serve attach materializes it).
  enum class HotSetSource { kNone, kProfiled, kCheckpoint };

  /// Idempotent, lazy materialization of the hot partition (no-op unless
  /// cache.policy == kHotness). Profiles access frequencies with the
  /// pre-sampling pass — or adopts `from_checkpoint` when it carries a
  /// usable hot set, skipping the re-profiling cost — then prefetches and
  /// pins the hot rows. Called automatically by run_epoch(), resume() and
  /// serve attachment; safe to call explicitly for eager warm-up.
  void ensure_hot_cache(const std::vector<NodeId>* from_checkpoint = nullptr);
  const std::vector<NodeId>& hot_nodes() const { return hot_nodes_; }
  HotSetSource hot_source() const { return hot_source_; }

  /// Multi-GPU support: external replicas share one gradient-sync hook
  /// called after each local backward pass (nullptr = single device).
  using GradSyncHook = std::function<void(GnnModel&)>;
  void set_grad_sync_hook(GradSyncHook hook) { grad_sync_ = std::move(hook); }
  /// Restricts this replica to a slice of the training set (data parallel).
  /// With more than one segment, every replica truncates to the same batch
  /// count so per-batch gradient synchronization barriers line up.
  void set_segment(std::uint32_t index, std::uint32_t count) {
    segment_index_ = index;
    segment_count_ = count;
  }

  // -- Checkpoint / recovery (src/ckpt, docs/recovery.md) -------------------

  /// Asks the running epoch to drain: samplers stop claiming batches, the
  /// in-flight ones finish through the pipeline, and run_epoch returns with
  /// EpochStats::interrupted set and the cursor at the first untrained
  /// batch. Safe from a signal-watcher thread. The flag is sticky — a
  /// stopped instance is expected to checkpoint and be torn down, with a
  /// fresh instance resuming from the checkpoint.
  void request_stop() { stop_requested_.store(true); }
  bool stop_requested() const { return stop_requested_.load(); }

  /// Writes a checkpoint at the current cursor. Must not race a running
  /// epoch — call between run_epoch calls or after an interrupted epoch
  /// returned (the trainer takes its own periodic checkpoints while the
  /// epoch runs). Returns the generation written. Requires ckpt.enabled.
  std::uint64_t checkpoint();

  struct ResumeInfo {
    std::uint64_t epoch = 0;       ///< epoch to resume into
    std::uint64_t next_batch = 0;  ///< first batch of `epoch` to train
    std::uint64_t generation = 0;  ///< checkpoint generation adopted
    std::uint32_t fallbacks = 0;   ///< corrupt newer generations skipped
  };

  /// Restores the newest valid checkpoint: model parameters, Adam state,
  /// the training RNG stream and the epoch/batch cursor. The next
  /// run_epoch(info.epoch) call then starts at info.next_batch. Returns
  /// nullopt when no valid checkpoint exists (fresh start). Single-extractor
  /// single-sampler configurations resume bit-exactly (in-order training);
  /// multi-worker runs resume at the trained-batch count, which is exact in
  /// batches but approximate in order (docs/recovery.md).
  std::optional<ResumeInfo> resume();

  CheckpointManager* checkpoint_manager() { return ckpt_mgr_.get(); }
  /// Test hook: forwards to the manager (no-op when checkpointing is off).
  void set_crash_injector(CrashInjector* injector) {
    if (ckpt_mgr_ != nullptr) ckpt_mgr_->set_crash_injector(injector);
  }
  /// Identity of this run's checkpoints — what load_latest / hot_swap_from
  /// verify before adopting a generation.
  ModelFingerprint fingerprint() const {
    return ModelFingerprint::from(config_.common.model,
                                  config_.common.run_seed,
                                  config_.common.batch_seeds);
  }

 private:
  struct ExtractorState;
  /// Returns true on success; false when the batch was abandoned after
  /// exhausting retries (its refs must still be released by the caller).
  bool extract_batch(SampledBatch& batch, ExtractorState& state);
  /// Returns this batch's training loss (also accumulated into stats).
  double train_batch(SampledBatch& batch, EpochStats& stats);
  /// Serializes the current training state as (epoch, next_batch). Called
  /// from the trainer thread (periodic) or between epochs (boundary /
  /// explicit); never from both at once.
  std::uint64_t write_checkpoint(std::uint64_t epoch, std::uint64_t next_batch);

  RunContext ctx_;
  GnnDriveConfig config_;
  NeighborSampler sampler_;

  std::uint32_t num_extractors_ = 0;     ///< after auto-shrink
  std::uint64_t max_batch_nodes_ = 0;    ///< Mb
  std::uint32_t covering_row_bytes_ = 0; ///< one row's sector-aligned cover
  std::uint32_t staging_row_bytes_ = 0;  ///< per staging slot (>= a segment)
  std::uint32_t staging_rows_ = 0;       ///< staging slots per extractor
  std::uint64_t feature_slots_ = 0;

  // Hotness policy state (empty/kNone under policy=lru).
  std::uint64_t hot_target_ = 0;  ///< slots budgeted for the hot partition
  bool hot_ready_ = false;        ///< partition pinned, sealed and usable
  std::vector<NodeId> hot_nodes_;
  HotSetSource hot_source_ = HotSetSource::kNone;

  PinnedBytes metadata_pin_;
  PinnedBytes staging_pin_;
  PinnedBytes cpu_buffer_pin_;
  std::vector<std::uint8_t> staging_;  ///< Ne x Mb covering rows

  // GDS mode: device-side bounce area (Ne x ring_depth covering blocks)
  // replaces the host staging buffer.
  std::uint32_t gds_covering_bytes_ = 0;
  std::vector<std::uint8_t> gds_bounce_;

  // Every DeviceAlloc must be declared after gpu_: its destructor frees
  // into the device, so it has to run before the device is torn down.
  std::unique_ptr<GpuDevice> gpu_;
  DeviceAlloc gds_bounce_alloc_;
  DeviceAlloc feature_buffer_alloc_;
  DeviceAlloc model_state_alloc_;
  std::unique_ptr<FeatureBuffer> feature_buffer_;
  std::unique_ptr<GnnModel> model_;
  Adam adam_;

  GradSyncHook grad_sync_;
  std::uint32_t segment_index_ = 0;
  std::uint32_t segment_count_ = 1;

  // Checkpoint/recovery state. The cursor always points at the first batch
  // of cur_epoch_ not yet trained; the trainer advances it, run_epoch rolls
  // it over at epoch boundaries, resume() seeds it from a checkpoint.
  std::unique_ptr<CheckpointManager> ckpt_mgr_;
  std::uint64_t cur_epoch_ = 0;
  std::atomic<std::uint64_t> cursor_{0};
  std::uint64_t total_trained_ = 0;  ///< lifetime trained batches
  /// The checkpointed training-time RNG stream (id 0): advanced once per
  /// trained batch so any stochastic training-side consumer (dropout, loss
  /// noise) added later inherits deterministic resume for free.
  Rng train_rng_{0};
  std::atomic<bool> stop_requested_{false};
  bool has_resume_ = false;
  std::uint64_t resume_epoch_ = 0;
  std::uint64_t resume_cursor_ = 0;
};

}  // namespace gnndrive
