// GNNDrive's four-stage training pipeline (Sect. 4, Fig. 4).
//
//   samplers --(extracting queue)--> extractors --(training queue)-->
//   trainer --(releasing queue)--> releaser
//
// * A pool of sampler threads generates sampled subgraphs per mini-batch
//   (memory-mapped topology through the OS page cache, like PyG+).
// * Each extractor owns one mini-batch at a time and performs Algorithm 1:
//   reuse pass over the feature buffer, then asynchronous two-phase
//   extraction — io_uring-style direct reads SSD -> staging buffer, and, as
//   each node's read completes, an asynchronous transfer staging -> feature
//   buffer (GPU device memory). No synchronous wait sits on the critical
//   path; loading of the current node overlaps the transfer of the previous.
// * The trainer indexes features in device memory through the node alias
//   list and runs forward/backward/Adam.
// * The releaser drops references; zero-ref slots retire to the standby list.
//
// Queues are bounded (capacities 6 and 4 by default, as evaluated in the
// paper); they carry only node ids/aliases, never feature data. Mini-batch
// reordering arises naturally from the thread pools.
//
// Buffer sizing follows Sect. 4.2: the staging buffer holds Ne x ring_depth
// covering rows of host memory, recycled as transfers retire (bounded by
// "the number of extractors and the number of features to be loaded to GPU
// for each extractor"; Ne additionally auto-shrinks to respect the budgets
// — the paper's "expanded or shrunk by adjusting the number of
// extractors"). The feature buffer reserves at least Ne x Mb device slots
// (deadlock freedom) and is capped by device memory (the paper's
// training-queue-depth restriction).
#pragma once

#include <atomic>
#include <memory>

#include "aio/io_ring.hpp"
#include "core/extract.hpp"
#include "core/feature_buffer.hpp"
#include "core/system.hpp"
#include "gpu/gpu.hpp"
#include "util/queue.hpp"

namespace gnndrive {

/// Fault-tolerance knobs for the extract stage (see DESIGN.md "Fault model
/// & recovery"). Defaults are tuned to the simulated device's latencies and
/// add no measurable cost when the storage layer never fails.
struct FaultToleranceConfig {
  /// Per-read retry budget for transient failures (-EIO, -ETIMEDOUT).
  std::uint32_t max_retries = 3;
  /// Exponential backoff before a retry: initial delay, growth factor, and
  /// uniform jitter fraction (0.25 = +-25%), deterministic per extractor.
  double backoff_initial_us = 100.0;
  double backoff_multiplier = 4.0;
  double backoff_jitter = 0.25;
  /// Stage watchdog: an in-flight read older than this is cancelled with
  /// -ETIMEDOUT and retried (or fails the batch once the budget is spent).
  double request_timeout_ms = 250.0;
  /// Upper bound on waiting for a node another extractor is loading; a
  /// loader always resolves its nodes (valid or failed), so this only fires
  /// if that extractor died — the waiter fails its batch instead of hanging.
  double wait_list_timeout_ms = 10000.0;
  /// Abort the epoch on the first unrecoverable batch (benches that want
  /// fail-stop semantics); default is graceful degradation.
  bool fail_fast = false;
};

struct GnnDriveConfig {
  CommonTrainConfig common;
  FaultToleranceConfig fault;
  /// Sorted-run read merging for the extract stage (see core/extract.hpp);
  /// `coalesce.enabled = false` is the per-node-read A/B baseline.
  CoalesceConfig coalesce;
  std::uint32_t num_samplers = 4;
  std::uint32_t num_extractors = 4;  ///< upper bound; may auto-shrink
  std::uint32_t extract_queue_cap = 6;
  std::uint32_t train_queue_cap = 4;
  unsigned ring_depth = 256;
  bool cpu_training = false;
  /// Ablation knob: false routes feature loads through the OS page cache
  /// (buffered I/O) instead of direct I/O, re-creating the memory
  /// contention GNNDrive is designed to avoid. ring_depth = 1 similarly
  /// degrades the asynchronous extraction to effectively synchronous I/O.
  bool direct_io = true;
  /// GPUDirect-Storage mode (the paper's Sect. 4.4 "GPU Direct Access"
  /// future work): feature reads DMA from SSD straight into device memory,
  /// eliminating the host staging buffer entirely. Constraints modeled as
  /// the paper describes them: 4 KiB access granularity (redundant loading
  /// of neighbouring rows is inevitable) and a small device-side bounce
  /// area bounded by the ring depth. GPU training only.
  bool gds_mode = false;
  /// CPU-training kernel-time floor (FLOP/s), analogous to
  /// GpuConfig::gpu_flops_per_s: models per-batch CPU training time on the
  /// target machine's cores, which — unlike this host's single core —
  /// parallelizes across data-parallel subprocesses (Fig. 13's CPU curve).
  /// 0 uses the per-model cpu_slowdown factor instead.
  double cpu_flops_per_s = 0.0;
  /// Feature-buffer size multiplier relative to the default sizing (Fig. 12).
  double feature_buffer_scale = 1.0;
  /// Fraction of currently-free host memory the staging buffer may pin.
  double staging_fraction = 0.5;
  GpuConfig gpu;
};

class GnnDrive final : public TrainSystem {
 public:
  GnnDrive(const RunContext& ctx, GnnDriveConfig config);
  ~GnnDrive() override;

  const char* name() const override {
    return config_.cpu_training ? "GNNDrive-CPU" : "GNNDrive-GPU";
  }
  EpochStats run_epoch(std::uint64_t epoch) override;
  double evaluate() override;

  GnnModel& model() { return *model_; }
  FeatureBuffer& feature_buffer() { return *feature_buffer_; }
  GpuDevice* gpu() { return gpu_.get(); }
  /// Effective configuration (after model-dim resolution and auto-shrink);
  /// the serving subsystem reads the sampler setup from here.
  const GnnDriveConfig& config() const { return config_; }
  std::uint32_t effective_extractors() const { return num_extractors_; }
  std::uint64_t max_batch_nodes() const { return max_batch_nodes_; }

  /// Multi-GPU support: external replicas share one gradient-sync hook
  /// called after each local backward pass (nullptr = single device).
  using GradSyncHook = std::function<void(GnnModel&)>;
  void set_grad_sync_hook(GradSyncHook hook) { grad_sync_ = std::move(hook); }
  /// Restricts this replica to a slice of the training set (data parallel).
  /// With more than one segment, every replica truncates to the same batch
  /// count so per-batch gradient synchronization barriers line up.
  void set_segment(std::uint32_t index, std::uint32_t count) {
    segment_index_ = index;
    segment_count_ = count;
  }

 private:
  struct ExtractorState;
  /// Returns true on success; false when the batch was abandoned after
  /// exhausting retries (its refs must still be released by the caller).
  bool extract_batch(SampledBatch& batch, ExtractorState& state);
  void train_batch(SampledBatch& batch, EpochStats& stats);

  RunContext ctx_;
  GnnDriveConfig config_;
  NeighborSampler sampler_;

  std::uint32_t num_extractors_ = 0;     ///< after auto-shrink
  std::uint64_t max_batch_nodes_ = 0;    ///< Mb
  std::uint32_t covering_row_bytes_ = 0; ///< one row's sector-aligned cover
  std::uint32_t staging_row_bytes_ = 0;  ///< per staging slot (>= a segment)
  std::uint32_t staging_rows_ = 0;       ///< staging slots per extractor
  std::uint64_t feature_slots_ = 0;

  PinnedBytes metadata_pin_;
  PinnedBytes staging_pin_;
  PinnedBytes cpu_buffer_pin_;
  std::vector<std::uint8_t> staging_;  ///< Ne x Mb covering rows

  // GDS mode: device-side bounce area (Ne x ring_depth covering blocks)
  // replaces the host staging buffer.
  std::uint32_t gds_covering_bytes_ = 0;
  std::vector<std::uint8_t> gds_bounce_;

  // Every DeviceAlloc must be declared after gpu_: its destructor frees
  // into the device, so it has to run before the device is torn down.
  std::unique_ptr<GpuDevice> gpu_;
  DeviceAlloc gds_bounce_alloc_;
  DeviceAlloc feature_buffer_alloc_;
  DeviceAlloc model_state_alloc_;
  std::unique_ptr<FeatureBuffer> feature_buffer_;
  std::unique_ptr<GnnModel> model_;
  Adam adam_;

  GradSyncHook grad_sync_;
  std::uint32_t segment_index_ = 0;
  std::uint32_t segment_count_ = 1;
};

}  // namespace gnndrive
