#include "core/evaluate.hpp"

namespace gnndrive {

Tensor gather_features_direct(const Dataset& dataset,
                              const SampledBatch& batch) {
  const std::uint32_t dim = dataset.spec().feature_dim;
  Tensor x0(static_cast<std::uint32_t>(batch.num_nodes()), dim);
  for (std::uint32_t i = 0; i < batch.num_nodes(); ++i) {
    dataset.read_feature_row(batch.nodes[i], x0.row(i));
  }
  return x0;
}

double evaluate_accuracy(GnnModel& model, const Dataset& dataset,
                         const SamplerConfig& sampler_config,
                         std::uint32_t batch_seeds) {
  DirectTopology topo(dataset);
  NeighborSampler sampler(sampler_config);
  const auto& valid = dataset.valid_nodes();
  std::uint64_t correct = 0;
  std::uint64_t total = 0;
  for (std::size_t start = 0; start < valid.size(); start += batch_seeds) {
    const std::size_t end = std::min(valid.size(),
                                     start + static_cast<std::size_t>(batch_seeds));
    std::vector<NodeId> seeds(valid.begin() + start, valid.begin() + end);
    SampledBatch batch = sampler.sample(/*batch_id=*/0xE7A1 + start, seeds,
                                        topo, &dataset.labels());
    Tensor x0 = gather_features_direct(dataset, batch);
    Tensor logits = model.forward(batch, x0);
    correct += count_correct(logits, batch.labels);
    total += batch.labels.size();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace gnndrive
