#include "core/pipeline.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "core/evaluate.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sampling/topology.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gnndrive {

namespace {

/// Sleeps for the modeled extra time of CPU-bound training (the per-model
/// CPU-vs-GPU throughput gap; see ModelConfig::cpu_slowdown).
void model_cpu_slowdown(double real_seconds, double factor) {
  if (factor > 1.0 && real_seconds > 0) {
    std::this_thread::sleep_for(from_us(real_seconds * (factor - 1.0) * 1e6));
  }
}

/// Transient storage failures are retried; anything else (alignment bugs,
/// out-of-range) is a programming error and fails the batch immediately.
bool transient_error(std::int32_t res) {
  return res == -EIO || res == -ETIMEDOUT;
}

std::uint64_t elapsed_ns(TimePoint begin, TimePoint end) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

/// Epoch encoded into SampledBatch::batch_id by run_epoch's samplers.
std::uint32_t epoch_of(std::uint64_t batch_id) {
  return static_cast<std::uint32_t>((batch_id >> 24) - 1);
}

}  // namespace

struct GnnDrive::ExtractorState {
  std::unique_ptr<IoRing> ring;
  std::uint8_t* staging_base = nullptr;  ///< staging_rows_ segment-wide rows
  std::uint8_t* gds_base = nullptr;      ///< ring_depth covering blocks (GDS)
  Rng backoff_rng{0};                    ///< jitter source, seeded per worker
  EpochResult counters;                  ///< accumulated fault accounting
  ExtractMetricHooks hooks;              ///< io.coalesce.* (null w/o registry)
  std::uint64_t io_segments = 0;         ///< coalesced reads issued
  std::uint64_t io_rows = 0;             ///< rows delivered by those reads

  // Extract sub-phase attribution for the current batch, accumulated only
  // while tracing is enabled (the real loop interleaves submit / SSD wait /
  // transfer wait; the worker emits them as sequential synthetic spans).
  std::uint64_t submit_ns = 0;
  std::uint64_t ssd_wait_ns = 0;
  std::uint64_t copy_wait_ns = 0;

  /// Jittered exponential backoff delay before retry number `attempt` (1+).
  Duration backoff(const FaultToleranceConfig& ft, std::uint32_t attempt) {
    double us = ft.backoff_initial_us;
    for (std::uint32_t a = 1; a < attempt; ++a) us *= ft.backoff_multiplier;
    const double jitter =
        1.0 + ft.backoff_jitter * (2.0 * backoff_rng.next_double() - 1.0);
    return from_us(us * std::max(jitter, 0.0));
  }
};

GnnDrive::GnnDrive(const RunContext& ctx, GnnDriveConfig config)
    : ctx_(ctx), config_(std::move(config)),
      sampler_(config_.common.sampler), adam_(config_.common.adam) {
  const Dataset& ds = *ctx_.dataset;
  HostMemory& mem = *ctx_.host_mem;

  metadata_pin_ = PinnedBytes(mem, ds.host_metadata_bytes(), "gnndrive-meta");

  max_batch_nodes_ =
      std::min<std::uint64_t>(sampler_.max_nodes_per_batch(
                                  config_.common.batch_seeds),
                              ds.spec().num_nodes);
  const auto row_bytes =
      static_cast<std::uint32_t>(ds.layout().feature_row_bytes);
  covering_row_bytes_ =
      row_bytes % kSectorSize == 0
          ? row_bytes
          : static_cast<std::uint32_t>(round_up(row_bytes, kSectorSize)) +
                kSectorSize;
  // Coalesced extraction: staging rows widen to hold a whole merged segment
  // and the per-extractor row pool shrinks accordingly (core/extract.hpp).
  staging_row_bytes_ = staging_row_bytes_for(config_.coalesce,
                                             covering_row_bytes_);
  staging_rows_ = staging_rows_for(config_.coalesce, config_.ring_depth);

  // Model (input/output dims come from the dataset).
  ModelConfig mc = config_.common.model;
  mc.in_dim = ds.spec().feature_dim;
  mc.num_classes = ds.spec().num_classes;
  mc.num_layers =
      static_cast<std::uint32_t>(config_.common.sampler.fanouts.size());
  config_.common.model = mc;
  model_ = std::make_unique<GnnModel>(mc);

  // Rough per-batch device working set (gathered X0 + activations), used to
  // size the feature buffer within device memory.
  const std::uint64_t x0_bytes = max_batch_nodes_ * mc.in_dim * 4ull;
  const std::uint64_t act_headroom =
      x0_bytes + max_batch_nodes_ * (8ull * mc.hidden_dim + mc.num_classes) * 4;

  // Auto-shrink the extractor count so (a) the staging buffer fits the host
  // budget and (b) the Ne x Mb feature-buffer reserve fits device memory.
  num_extractors_ = std::max(1u, config_.num_extractors);
  const auto staging_budget = static_cast<std::uint64_t>(
      config_.staging_fraction * static_cast<double>(mem.available()));
  const std::uint64_t device_for_slots =
      config_.cpu_training
          ? ~0ull
          : config_.gpu.device_memory_bytes -
                std::min(config_.gpu.device_memory_bytes,
                         model_->param_state_bytes() + act_headroom);
  // CPU training keeps the feature buffer in host memory: its Ne x Mb
  // reserve competes for the same budget, so it bounds Ne as well.
  const std::uint64_t host_for_slots =
      config_.cpu_training
          ? static_cast<std::uint64_t>(0.80 *
                                       static_cast<double>(mem.available()))
          : ~0ull;
  while (num_extractors_ > 1 &&
         ((!config_.gds_mode &&
           static_cast<std::uint64_t>(num_extractors_) * staging_rows_ *
                   staging_row_bytes_ >
               staging_budget) ||
          num_extractors_ * max_batch_nodes_ * row_bytes >
              std::min(device_for_slots, host_for_slots))) {
    --num_extractors_;
  }

  GD_CHECK_MSG(!(config_.gds_mode && config_.cpu_training),
               "GDS mode requires GPU training");
  // Staging rows are recycled as transfers retire, so the buffer is
  // bounded by the number of extractors times the I/O depth — "the number
  // of features to be loaded to GPU for each extractor" (Sect. 4.2) — not
  // by the whole mini-batch. This is what keeps GNNDrive's host footprint
  // tiny even at an "8 GB" budget (Fig. 9).
  const std::uint64_t staging_bytes =
      config_.gds_mode ? 0
                       : static_cast<std::uint64_t>(num_extractors_) *
                             staging_rows_ * staging_row_bytes_;
  staging_pin_ = PinnedBytes(mem, staging_bytes, "gnndrive-staging");
  staging_.resize(staging_bytes);

  // Feature buffer: at least the Ne x Mb deadlock reserve; by default enough
  // for the training queue on top, scaled by the Fig. 12 knob.
  const std::uint64_t reserve = num_extractors_ * max_batch_nodes_;
  std::uint64_t desired = static_cast<std::uint64_t>(
      static_cast<double>((num_extractors_ + config_.train_queue_cap) *
                          max_batch_nodes_) *
      config_.feature_buffer_scale);
  desired = std::max(desired, reserve);

  if (config_.cpu_training) {
    // CPU variant: the feature buffer lives in host memory and shrinks to
    // what is left after the staging buffer AND the topology working set
    // (the buffer must not evict the index array sampling depends on —
    // that would recreate the very contention GNNDrive avoids).
    const std::uint64_t topo_bytes = ds.layout().indices_bytes;
    const std::uint64_t avail = mem.available();
    const std::uint64_t for_slots =
        avail > topo_bytes
            ? static_cast<std::uint64_t>(
                  0.75 * static_cast<double>(avail - topo_bytes))
            : avail / 4;
    const std::uint64_t host_fit = for_slots / row_bytes;
    feature_slots_ = std::max(std::min(desired, host_fit), reserve);
    cpu_buffer_pin_ =
        PinnedBytes(mem, feature_slots_ * row_bytes, "gnndrive-feature-buf");
  } else {
    gpu_ = std::make_unique<GpuDevice>(config_.gpu, ctx_.telemetry);
    model_state_alloc_ =
        DeviceAlloc(*gpu_, model_->param_state_bytes(), "model+adam");
    const std::uint64_t fit = device_for_slots / row_bytes;
    feature_slots_ = std::max<std::uint64_t>(
        std::min<std::uint64_t>(desired, fit), reserve);
    // Throws device SimOutOfMemory when even the reserve does not fit.
    feature_buffer_alloc_ =
        DeviceAlloc(*gpu_, feature_slots_ * row_bytes, "feature-buffer");
  }

  if (config_.gds_mode) {
    // GDS: per-extractor device bounce blocks at 4 KiB granularity.
    gds_covering_bytes_ = static_cast<std::uint32_t>(
        round_up(row_bytes, kPageSize) + kPageSize);
    const std::uint64_t bounce_bytes =
        static_cast<std::uint64_t>(num_extractors_) * config_.ring_depth *
        gds_covering_bytes_;
    gds_bounce_alloc_ = DeviceAlloc(*gpu_, bounce_bytes, "gds-bounce");
    gds_bounce_.resize(bounce_bytes);
  }

  FeatureBufferConfig fb;
  fb.num_slots = feature_slots_;
  fb.row_floats = ds.spec().feature_dim;
  feature_buffer_ =
      std::make_unique<FeatureBuffer>(fb, ds.spec().num_nodes, ctx_.telemetry);

  // Cache-policy validation (src/cache). The hot budget is fixed here so a
  // partition that would violate the cold-region deadlock-freedom invariant
  // (cold_slots >= Ne x Mb) is rejected at construction, not discovered as
  // a wedged extractor mid-epoch.
  validate_cache_config(config_.cache);
  if (config_.cache.policy == CachePolicy::kHotness) {
    hot_target_ = static_cast<std::uint64_t>(
        config_.cache.hot_fraction * static_cast<double>(feature_slots_));
    if (feature_slots_ - hot_target_ < reserve) {
      throw std::invalid_argument(
          "cache.hot_fraction=" + std::to_string(config_.cache.hot_fraction) +
          " leaves " + std::to_string(feature_slots_ - hot_target_) +
          " cold slots of " + std::to_string(feature_slots_) +
          ", below the Ne x Mb deadlock-freedom reserve of " +
          std::to_string(reserve));
    }
  }

  GD_LOG_INFO(
      "GNNDrive(%s): Ne=%u Mb=%llu slots=%llu staging=%.1f MiB policy=%s "
      "hot_target=%llu",
      config_.cpu_training ? "cpu" : "gpu", num_extractors_,
      static_cast<unsigned long long>(max_batch_nodes_),
      static_cast<unsigned long long>(feature_slots_),
      static_cast<double>(staging_bytes) / (1 << 20),
      cache_policy_name(config_.cache.policy),
      static_cast<unsigned long long>(hot_target_));

  // Checkpoint/recovery (src/ckpt): the training RNG stream is seeded from
  // the run seed so a fresh instance and a restored one agree by
  // construction until the first trained batch diverges them.
  train_rng_ = Rng(splitmix64(config_.common.run_seed));
  if (config_.ckpt.enabled) {
    ckpt_mgr_ =
        std::make_unique<CheckpointManager>(config_.ckpt, ctx_.telemetry);
  }
}

GnnDrive::~GnnDrive() = default;

void GnnDrive::ensure_hot_cache(const std::vector<NodeId>* from_checkpoint) {
  if (config_.cache.policy != CachePolicy::kHotness || hot_ready_) return;
  if (hot_target_ == 0) {
    hot_ready_ = true;  // hot_fraction rounded to zero slots: plain LRU
    return;
  }
  const Dataset& ds = *ctx_.dataset;
  if (from_checkpoint != nullptr && !from_checkpoint->empty() &&
      from_checkpoint->size() <= hot_target_) {
    // Resume path: adopt the checkpointed hot set instead of re-profiling —
    // the partition is part of the training run's identity and re-deriving
    // it would only repeat the pre-sampling cost.
    hot_nodes_ = *from_checkpoint;
    hot_source_ = HotSetSource::kCheckpoint;
    GD_LOG_INFO("hot-cache: adopted %zu pinned nodes from checkpoint",
                hot_nodes_.size());
  } else {
    const PresampleResult prof = presample_hot_set(
        ds, *ctx_.page_cache, config_.common.sampler,
        config_.common.batch_seeds, config_.common.run_seed,
        config_.cache.presample_batches, hot_target_);
    hot_nodes_ = prof.hot_nodes;
    hot_source_ = HotSetSource::kProfiled;
    GD_LOG_INFO(
        "hot-cache: profiled %u warm-up batches, pinning %zu/%llu slots "
        "(profile coverage %.1f%%)",
        prof.batches_profiled, hot_nodes_.size(),
        static_cast<unsigned long long>(feature_slots_),
        prof.coverage() * 100.0);
  }
  const HotPrefetchStats pf =
      prefetch_hot_rows(*feature_buffer_, hot_nodes_, ds, *ctx_.ssd,
                        config_.coalesce, ctx_.telemetry);
  GD_LOG_INFO("hot-cache: prefetched %llu rows in %llu reads (%.1f MiB)",
              static_cast<unsigned long long>(pf.rows),
              static_cast<unsigned long long>(pf.reads),
              static_cast<double>(pf.bytes) / (1 << 20));
  hot_ready_ = true;
}

bool GnnDrive::extract_batch(SampledBatch& batch, ExtractorState& state) {
  FeatureBuffer& fb = *feature_buffer_;
  const OnDiskLayout& lay = ctx_.dataset->layout();
  const auto row_bytes = static_cast<std::uint32_t>(lay.feature_row_bytes);
  const FaultToleranceConfig& ft = config_.fault;
  const Duration req_timeout = from_us(ft.request_timeout_ms * 1e3);
  // Watchdog poll granularity: short enough to detect stuck requests well
  // within the timeout, long enough to stay off the fast path.
  const Duration poll =
      std::max(from_us(ft.request_timeout_ms * 1e3 / 4), from_us(500.0));
  const Duration wait_list_timeout = from_us(ft.wait_list_timeout_ms * 1e3);

  SpanTracer* tracer =
      ctx_.telemetry != nullptr ? ctx_.telemetry->tracer() : nullptr;
  const bool tracing = tracer != nullptr && tracer->enabled();
  state.submit_ns = state.ssd_wait_ns = state.copy_wait_ns = 0;

  std::vector<std::uint32_t> wait_idx;
  std::vector<std::uint32_t> load_idx;

  // Pass 1 (Algorithm 1 lines 5-19): reuse triage + reference counts, one
  // buffer-lock acquisition for the whole batch.
  {
    BusyScope busy(ctx_.telemetry);
    triage_batch(fb, batch, wait_idx, load_idx);
  }

  if (config_.gds_mode) {
    // GPUDirect-Storage path (Sect. 4.4): SSD DMAs 4 KiB-aligned blocks
    // straight into device bounce memory; an on-device copy places the row
    // into its feature-buffer slot. No host staging, no separate H2D phase.
    // Fault policy here is simpler than the staging path: transient read
    // failures retry immediately (same bounce block) up to the budget; the
    // watchdog cancels overdue requests so a stuck DMA cannot wedge the
    // extractor.
    std::vector<unsigned> free_bounce;
    for (unsigned i = 0; i < config_.ring_depth; ++i) free_bounce.push_back(i);
    const std::size_t n_load = load_idx.size();
    std::vector<unsigned> bounce_of(n_load, 0);
    std::vector<std::uint32_t> attempts(n_load, 0);
    std::size_t submitted = 0;
    std::size_t resolved = 0;
    std::size_t inflight = 0;
    bool failed = false;
    const auto submit_gds_read = [&](std::size_t j) {
      const TimePoint t = tracing ? Clock::now() : TimePoint{};
      const NodeId node = batch.nodes[load_idx[j]];
      const std::uint64_t off = lay.feature_offset_of(node);
      const std::uint64_t base = round_down(off, kPageSize);  // 4 KiB
      const auto len = static_cast<std::uint32_t>(
          round_up(off + row_bytes, kPageSize) - base);
      GD_CHECK(len <= gds_covering_bytes_);
      state.ring->prep_read(
          base, len, state.gds_base + bounce_of[j] * gds_covering_bytes_, j);
      state.ring->submit();
      ++inflight;
      if (tracing) state.submit_ns += elapsed_ns(t, Clock::now());
    };
    while (resolved < n_load) {
      while (!failed && submitted < n_load && !free_bounce.empty()) {
        const std::size_t j = submitted++;
        const std::uint32_t i = load_idx[j];
        batch.alias[i] = fb.allocate_slot(batch.nodes[i]);
        bounce_of[j] = free_bounce.back();
        free_bounce.pop_back();
        submit_gds_read(j);
      }
      if (failed && submitted < n_load) {
        // Unwind loads that were never submitted: their refs are owed but no
        // slot was allocated; waiters see the failure and fail their batch.
        for (std::size_t j = submitted; j < n_load; ++j) {
          fb.mark_failed(batch.nodes[load_idx[j]]);
          ++resolved;
        }
        submitted = n_load;
        continue;
      }
      if (inflight == 0) continue;
      const TimePoint tw = tracing ? Clock::now() : TimePoint{};
      const auto cqe_opt = state.ring->wait_cqe_for(poll);
      if (tracing) state.ssd_wait_ns += elapsed_ns(tw, Clock::now());
      if (!cqe_opt) {
        state.ring->cancel_expired(req_timeout);
        continue;
      }
      --inflight;
      const std::size_t j = cqe_opt->user_data;
      const NodeId node = batch.nodes[load_idx[j]];
      if (cqe_opt->res < 0) {
        ++state.counters.io_errors;
        if (cqe_opt->res == -ETIMEDOUT) ++state.counters.io_timeouts;
        if (!failed && transient_error(cqe_opt->res) &&
            attempts[j] < ft.max_retries) {
          ++attempts[j];
          ++state.counters.io_retries;
          if (ctx_.telemetry) ctx_.telemetry->count(FaultCounter::kIoRetries);
          submit_gds_read(j);
          continue;
        }
        failed = true;
        log_structured(LogLevel::kWarn, "extract_failed",
                       {kv("batch", batch.batch_id),
                        kv("epoch", epoch_of(batch.batch_id)),
                        kv("node", node), kv("res", cqe_opt->res),
                        kv("attempts", attempts[j])});
        fb.mark_failed(node);
        free_bounce.push_back(bounce_of[j]);
        ++resolved;
        continue;
      }
      if (attempts[j] > 0) ++state.counters.io_recovered;
      const std::uint64_t off = lay.feature_offset_of(node);
      const std::uint64_t base = round_down(off, kPageSize);
      const unsigned bslot = bounce_of[j];
      const std::uint32_t i = load_idx[j];
      gpu_->launch([&] {  // on-device copy: bounce block -> slot
        std::memcpy(fb.slot_data(batch.alias[i]),
                    state.gds_base + bslot * gds_covering_bytes_ +
                        (off - base),
                    row_bytes);
      });
      fb.mark_valid(node);
      free_bounce.push_back(bslot);
      ++resolved;
    }
    for (std::uint32_t i : wait_idx) {
      if (failed) break;  // refs released by the caller
      const auto slot = fb.wait_ready(batch.nodes[i], wait_list_timeout);
      if (!slot.has_value() || *slot == kNoSlot) {
        failed = true;
        break;
      }
      batch.alias[i] = *slot;
    }
    return !failed;
  }

  // Pass 2 (lines 20-31): the shared coalescing core (core/extract.cpp)
  // plans sorted-run merged reads, allocates slots per segment under one
  // buffer-lock take, submits the asynchronous loads and scatters completed
  // rows, preserving the per-segment retry/watchdog/fail protocol. Training
  // installs jittered exponential backoff as its retry policy.
  ExtractEnv env;
  env.fb = &fb;
  env.layout = &lay;
  env.row_bytes = row_bytes;
  env.ring = state.ring.get();
  env.staging_base = state.staging_base;
  env.staging_row_bytes = staging_row_bytes_;
  env.staging_rows = staging_rows_;
  env.gpu = gpu_.get();
  env.telemetry = ctx_.telemetry;

  ExtractPolicy policy;
  policy.coalesce = config_.coalesce;
  policy.max_retries = ft.max_retries;
  policy.request_timeout = req_timeout;
  policy.poll = poll;
  policy.backoff = [&state, &ft](std::uint32_t attempt) {
    return state.backoff(ft, attempt);
  };
  policy.batch_id = batch.batch_id;
  policy.epoch = epoch_of(batch.batch_id);

  ExtractCounters ec;
  ExtractTrace tr;
  tr.tracing = tracing;
  bool ok = extract_load_set(batch, load_idx, env, policy, state.hooks, ec,
                             &tr);
  state.counters.io_errors += ec.io_errors;
  state.counters.io_retries += ec.io_retries;
  state.counters.io_recovered += ec.io_recovered;
  state.counters.io_timeouts += ec.io_timeouts;
  state.io_segments += ec.segments;
  state.io_rows += ec.rows_loaded;
  state.submit_ns = tr.submit_ns;
  state.ssd_wait_ns = tr.ssd_wait_ns;
  state.copy_wait_ns = tr.copy_wait_ns;

  // Wait-list resolution (line 38): nodes other extractors were loading. A
  // loader always resolves its nodes (valid or failed), so the timeout only
  // fires if that extractor died; the waiter then fails its batch too.
  if (ok) ok = resolve_wait_list(fb, batch, wait_idx, wait_list_timeout);
  return ok;
}

double GnnDrive::train_batch(SampledBatch& batch, EpochStats& stats) {
  const std::uint32_t dim = ctx_.dataset->spec().feature_dim;
  Tensor x0(static_cast<std::uint32_t>(batch.num_nodes()), dim);

  // Per-batch device working set (gathered features + activations).
  DeviceAlloc act;
  if (gpu_ != nullptr) {
    act = DeviceAlloc(*gpu_, x0.bytes() + model_->activation_bytes(batch),
                      "train-activations");
  }

  TrainStats ts;
  const auto run = [&] {
    // Index features in device memory through the node alias list.
    for (std::uint32_t i = 0; i < batch.num_nodes(); ++i) {
      GD_CHECK_MSG(batch.alias[i] != kNoSlot, "untracked node at train time");
      std::memcpy(x0.row(i), feature_buffer_->slot_data(batch.alias[i]),
                  dim * 4);
    }
    ts = model_->train_batch(batch, x0);
    if (grad_sync_) grad_sync_(*model_);
    adam_.step(model_->params());
    adam_.zero_grad(model_->params());
  };

  const TimePoint t0 = Clock::now();
  if (gpu_ != nullptr) {
    gpu_->launch([&] {
      run();
      // Modeled kernel-time floor for slower devices (GpuConfig docs).
      if (config_.gpu.gpu_flops_per_s > 0) {
        const double kernel_s = static_cast<double>(model_->flops(batch)) /
                                config_.gpu.gpu_flops_per_s;
        const double real_s = to_seconds(Clock::now() - t0);
        if (kernel_s > real_s) {
          std::this_thread::sleep_for(from_us((kernel_s - real_s) * 1e6));
        }
      }
    });
  } else {
    BusyScope busy(ctx_.telemetry);
    run();
    if (config_.cpu_flops_per_s > 0) {
      const double kernel_s = static_cast<double>(model_->flops(batch)) /
                              config_.cpu_flops_per_s;
      const double real_s = to_seconds(Clock::now() - t0);
      if (kernel_s > real_s) {
        std::this_thread::sleep_for(from_us((kernel_s - real_s) * 1e6));
      }
    } else {
      model_cpu_slowdown(to_seconds(Clock::now() - t0),
                         config_.common.model.cpu_slowdown());
    }
  }
  stats.loss += ts.loss;
  stats.train_accuracy += ts.total > 0 ? static_cast<double>(ts.correct) /
                                             static_cast<double>(ts.total)
                                       : 0.0;
  return ts.loss;
}

std::uint64_t GnnDrive::write_checkpoint(std::uint64_t epoch,
                                         std::uint64_t next_batch) {
  TrainCursor cursor;
  cursor.epoch = epoch;
  cursor.next_batch = next_batch;
  cursor.trained_batches = total_trained_;
  cursor.fingerprint = fingerprint();
  cursor.rng_streams.push_back(RngStream{0, train_rng_.state()});
  cursor.hot_set = hot_nodes_;
  cursor.layout_fingerprint = ctx_.dataset->layout().layout_fingerprint();
  return ckpt_mgr_->write(cursor, *model_, adam_);
}

std::uint64_t GnnDrive::checkpoint() {
  GD_CHECK_MSG(ckpt_mgr_ != nullptr,
               "checkpoint() requires GnnDriveConfig::ckpt.enabled");
  if (gpu_ != nullptr) gpu_->sync();
  return write_checkpoint(cur_epoch_, cursor_.load());
}

std::optional<GnnDrive::ResumeInfo> GnnDrive::resume() {
  if (ckpt_mgr_ == nullptr) return std::nullopt;
  auto loaded = ckpt_mgr_->load_latest(*model_, &adam_, fingerprint());
  if (!loaded.has_value()) return std::nullopt;
  // A cursor trained against one physical feature order must not resume on
  // an image packed differently: batch contents would silently diverge.
  // Recompile the image to the checkpoint's layout (or vice versa) first.
  const std::uint64_t layout_fp = ctx_.dataset->layout().layout_fingerprint();
  if (loaded->cursor.layout_fingerprint != layout_fp) {
    throw std::runtime_error(
        "resume: checkpoint layout fingerprint " +
        std::to_string(loaded->cursor.layout_fingerprint) +
        " does not match the dataset's compiled layout " +
        std::to_string(layout_fp));
  }
  cur_epoch_ = loaded->cursor.epoch;
  cursor_.store(loaded->cursor.next_batch);
  total_trained_ = loaded->cursor.trained_batches;
  for (const RngStream& stream : loaded->cursor.rng_streams) {
    if (stream.id == 0) train_rng_.set_state(stream.state);
  }
  has_resume_ = true;
  resume_epoch_ = cur_epoch_;
  resume_cursor_ = loaded->cursor.next_batch;
  // Materialize the hot partition from the checkpoint (skips re-profiling);
  // falls back to a fresh profile when the checkpoint predates the policy.
  ensure_hot_cache(&loaded->cursor.hot_set);
  ResumeInfo info;
  info.epoch = cur_epoch_;
  info.next_batch = resume_cursor_;
  info.generation = loaded->generation;
  info.fallbacks = loaded->fallbacks;
  return info;
}

EpochStats GnnDrive::run_epoch(std::uint64_t epoch) {
  const Dataset& ds = *ctx_.dataset;
  // Hotness policy: profile + prefetch + pin before the first batch (no-op
  // for kLru or once the partition exists). Runs outside the epoch timer's
  // steady state on purpose — it is a one-time startup cost.
  ensure_hot_cache();

  // Data-parallel segment of the training set (whole set by default).
  std::vector<NodeId> train;
  {
    const auto& all = ds.train_nodes();
    train.reserve(all.size() / segment_count_ + 1);
    for (std::size_t i = segment_index_; i < all.size();
         i += segment_count_) {
      train.push_back(all[i]);
    }
  }
  auto batches = make_minibatches(
      train, config_.common.batch_seeds,
      splitmix64(config_.common.run_seed ^ (epoch + 1)));
  if (segment_count_ > 1) {
    // Equal batch counts across replicas so gradient-sync barriers line up.
    const std::size_t equal = (ds.train_nodes().size() / segment_count_) /
                              config_.common.batch_seeds;
    if (equal > 0 && batches.size() > equal) batches.resize(equal);
  }
  const std::size_t n_batches = batches.size();

  // Resume cursor: the first run_epoch after resume() starts mid-epoch at
  // the checkpointed batch; the shuffle above is deterministic per
  // (run_seed, epoch), so batches[start..] are exactly the ones the
  // interrupted run never trained.
  std::size_t start = 0;
  if (has_resume_ && epoch == resume_epoch_) {
    start = std::min<std::size_t>(resume_cursor_, n_batches);
  }
  has_resume_ = false;
  cur_epoch_ = epoch;
  cursor_.store(start);
  const bool ckpt_on = ckpt_mgr_ != nullptr;

  // Observability handles for this epoch (see docs/observability.md). Stage
  // histograms are always-on relaxed atomics; spans are recorded only while
  // tracing is enabled.
  Telemetry* tel = ctx_.telemetry;
  MetricsRegistry* reg = tel != nullptr ? tel->metrics() : nullptr;
  SpanTracer* tracer = tel != nullptr ? tel->tracer() : nullptr;
  const bool tracing = tracer != nullptr && tracer->enabled();
  const auto epoch32 = static_cast<std::uint32_t>(epoch);

  // Live telemetry plane: refresh the attributor's topology, lease the
  // time-series sampler for the duration of the epoch (replaces the old
  // tracing-only 5 ms monitor thread — the sampler re-emits every gauge as
  // a trace counter track while tracing is on), and mark the process ready.
  BottleneckAttributor* attributor = tel != nullptr ? tel->attributor() : nullptr;
  if (attributor != nullptr) {
    AttributionConfig ac = attributor->config();
    ac.num_samplers = config_.num_samplers;
    ac.num_extractors = num_extractors_;
    ac.extract_queue_cap = config_.extract_queue_cap;
    ac.train_queue_cap = config_.train_queue_cap;
    if (ctx_.ssd != nullptr) ac.ssd_channels = ctx_.ssd->config().channels;
    attributor->set_config(ac);
  }
  Gauge* g_running = reg != nullptr ? &reg->gauge("pipeline.running") : nullptr;
  if (reg != nullptr) {
    reg->gauge("pipeline.epoch").set(static_cast<std::int64_t>(epoch));
  }
  if (g_running != nullptr) g_running->add(1);
  struct RunningGuard {
    Gauge* g;
    ~RunningGuard() {
      if (g != nullptr) g->sub(1);
    }
  } running_guard{g_running};
  SamplerLease sampler_lease(tel != nullptr ? tel->sampler() : nullptr);
  MetricsRegistry::Snapshot epoch_begin_snap;
  if (reg != nullptr && attributor != nullptr) {
    epoch_begin_snap = reg->snapshot();
  }

  // Release-queue payload: the node list plus the batch id, so release spans
  // line up with the rest of the batch's trace.
  struct ReleaseItem {
    std::uint64_t batch_id = 0;
    std::vector<NodeId> nodes;
  };

  BoundedQueue<SampledBatch> extract_q(config_.extract_queue_cap);
  BoundedQueue<SampledBatch> train_q(config_.train_queue_cap);
  BoundedQueue<ReleaseItem> release_q(16);

  ConcurrentHistogram h_sample, h_extract, h_train, h_release;
  ConcurrentHistogram* rh_sample = nullptr;
  ConcurrentHistogram* rh_extract = nullptr;
  ConcurrentHistogram* rh_train = nullptr;
  ConcurrentHistogram* rh_release = nullptr;
  if (reg != nullptr) {
    rh_sample = &reg->histogram("stage.sample.us");
    rh_extract = &reg->histogram("stage.extract.us");
    rh_train = &reg->histogram("stage.train.us");
    rh_release = &reg->histogram("stage.release.us");
    extract_q.bind_metrics(&reg->gauge("pipeline.extract_q.depth"),
                           &reg->counter("pipeline.extract_q.push_blocked"),
                           &reg->counter("pipeline.extract_q.pop_blocked"));
    train_q.bind_metrics(&reg->gauge("pipeline.train_q.depth"),
                         &reg->counter("pipeline.train_q.push_blocked"),
                         &reg->counter("pipeline.train_q.pop_blocked"));
    release_q.bind_metrics(&reg->gauge("pipeline.release_q.depth"),
                           &reg->counter("pipeline.release_q.push_blocked"),
                           &reg->counter("pipeline.release_q.pop_blocked"));
  }
  const auto stage_done = [](ConcurrentHistogram& local,
                             ConcurrentHistogram* global, TimePoint b,
                             TimePoint e) {
    const double us = to_seconds(e - b) * 1e6;
    local.add_us(us);
    if (global != nullptr) global->add_us(us);
  };
  const FeatureBufferStats fb_before = feature_buffer_->stats();

  std::atomic<std::size_t> next_batch{start};
  std::atomic<std::uint64_t> sample_ns{0};
  std::atomic<std::uint64_t> extract_ns{0};
  // Epoch fault accounting (EpochResult), merged from per-worker counters.
  std::atomic<std::uint64_t> failed_batches{0};
  std::atomic<std::uint64_t> trained_batches{0};
  std::atomic<std::uint64_t> io_errors{0};
  std::atomic<std::uint64_t> io_retries{0};
  std::atomic<std::uint64_t> io_recovered{0};
  std::atomic<std::uint64_t> io_timeouts{0};
  std::atomic<std::uint64_t> io_segments{0};
  std::atomic<std::uint64_t> io_rows{0};
  std::mutex err_mu;
  std::exception_ptr error;
  const auto capture_error = [&] {
    std::lock_guard lk(err_mu);
    if (!error) error = std::current_exception();
    extract_q.close();
    train_q.close();
    release_q.close();
  };

  EpochStats stats;
  stats.batches = n_batches - start;
  const TimePoint t0 = Clock::now();

  std::vector<std::thread> samplers;
  for (std::uint32_t s = 0; s < config_.num_samplers; ++s) {
    samplers.emplace_back([&] {
      try {
        MmapTopology topo(ds, *ctx_.page_cache);
        for (;;) {
          // Graceful drain: a stop request stops claiming new batches; the
          // already-claimed ones finish through the pipeline normally.
          if (stop_requested_.load(std::memory_order_relaxed)) break;
          const std::size_t b = next_batch.fetch_add(1);
          if (b >= n_batches) break;
          const TimePoint ts = Clock::now();
          SampledBatch batch;
          {
            BusyScope busy(ctx_.telemetry);
            batch = sampler_.sample(((epoch + 1) << 24) | b, batches[b], topo,
                                    &ds.labels());
          }
          const TimePoint te = Clock::now();
          sample_ns.fetch_add(elapsed_ns(ts, te));
          stage_done(h_sample, rh_sample, ts, te);
          if (tracing) {
            tracer->record(kSpanSample, batch.batch_id, epoch32, ts, te);
          }
          if (!extract_q.push(std::move(batch))) break;
        }
      } catch (...) {
        capture_error();
      }
    });
  }

  std::vector<std::thread> workers;
  if (config_.common.sample_only) {
    // Fig. 2 "-only" mode: sampled batches are discarded.
    workers.emplace_back([&] {
      while (extract_q.pop().has_value()) {
      }
    });
  } else {
    for (std::uint32_t e = 0; e < num_extractors_; ++e) {
      workers.emplace_back([&, e] {
        ExtractorState state;
        state.backoff_rng =
            Rng(splitmix64(config_.common.run_seed ^ (epoch << 8) ^ e));
        const auto flush_counters = [&] {
          io_errors.fetch_add(state.counters.io_errors);
          io_retries.fetch_add(state.counters.io_retries);
          io_recovered.fetch_add(state.counters.io_recovered);
          io_timeouts.fetch_add(state.counters.io_timeouts);
          io_segments.fetch_add(state.io_segments);
          io_rows.fetch_add(state.io_rows);
          state.counters = EpochResult{};
          state.io_segments = 0;
          state.io_rows = 0;
        };
        try {
          IoRingConfig rc;
          rc.queue_depth = config_.ring_depth;
          // Direct I/O bypasses the OS page cache (Sect. 4.2); buffered
          // mode exists as an ablation (see GnnDriveConfig::direct_io).
          rc.direct = config_.direct_io;
          if (!config_.gds_mode) {
            // A request longer than a staging slot would overrun it; the
            // ring rejects such a planner bug with -EINVAL.
            rc.max_transfer_bytes = staging_row_bytes_;
          }
          state.ring = std::make_unique<IoRing>(
              *ctx_.ssd, rc, config_.direct_io ? nullptr : ctx_.page_cache,
              ctx_.telemetry);
          if (reg != nullptr) {
            state.hooks.segments = &reg->counter("io.coalesce.segments");
            state.hooks.rows = &reg->counter("io.coalesce.rows");
            state.hooks.rows_per_read =
                &reg->histogram("io.coalesce.rows_per_read");
            state.hooks.staging_in_use = &reg->gauge("io.staging_in_use");
          }
          if (config_.gds_mode) {
            state.gds_base =
                gds_bounce_.data() + static_cast<std::uint64_t>(e) *
                                         config_.ring_depth *
                                         gds_covering_bytes_;
          } else {
            state.staging_base =
                staging_.data() + static_cast<std::uint64_t>(e) *
                                      staging_rows_ * staging_row_bytes_;
          }
          for (;;) {
            const TimePoint qb = tracing ? Clock::now() : TimePoint{};
            auto batch = extract_q.pop();
            if (!batch) break;
            if (tracing) {
              tracer->record(kSpanQueueWait, batch->batch_id, epoch32, qb,
                             Clock::now());
            }
            const TimePoint ts = Clock::now();
            const std::uint64_t span_base = tracing ? tracer->now_ns() : 0;
            const bool ok = extract_batch(*batch, state);
            const TimePoint te = Clock::now();
            extract_ns.fetch_add(elapsed_ns(ts, te));
            stage_done(h_extract, rh_extract, ts, te);
            if (tracing) {
              tracer->record(kSpanExtract, batch->batch_id, epoch32, ts, te);
              // The real loop interleaves submit / SSD wait / transfer wait;
              // the accumulated durations are emitted back-to-back so the
              // extract row shows where the time went.
              std::uint64_t cur = span_base;
              if (state.submit_ns > 0) {
                tracer->record_rel(kSpanRingSubmit, batch->batch_id, epoch32,
                                   cur, state.submit_ns);
                cur += state.submit_ns;
              }
              if (state.ssd_wait_ns > 0) {
                tracer->record_rel(kSpanSsdWait, batch->batch_id, epoch32, cur,
                                   state.ssd_wait_ns);
                cur += state.ssd_wait_ns;
              }
              if (state.copy_wait_ns > 0) {
                tracer->record_rel(kSpanCopyWait, batch->batch_id, epoch32,
                                   cur, state.copy_wait_ns);
              }
            }
            if (ok) {
              if (!train_q.push(std::move(*batch))) break;
            } else {
              // Graceful degradation: the batch never trains, but its
              // references must still drain so slots return to standby.
              failed_batches.fetch_add(1);
              if (ctx_.telemetry) {
                ctx_.telemetry->count(FaultCounter::kFailedBatches);
              }
              log_structured(LogLevel::kWarn, "batch_failed",
                             {kv("batch", batch->batch_id), kv("epoch", epoch),
                              kv("io_errors", state.counters.io_errors),
                              kv("io_retries", state.counters.io_retries)});
              if (auto item = release_q.push_or_reclaim(ReleaseItem{
                      batch->batch_id, std::move(batch->nodes)})) {
                // Epoch is aborting and the releaser is gone: release inline
                // so no extractor starves waiting for slots.
                feature_buffer_->release(item->nodes);
              }
              if (config_.fault.fail_fast) {
                flush_counters();
                throw std::runtime_error(
                    "GNNDrive: batch extraction failed (fail_fast)");
              }
            }
          }
          flush_counters();
        } catch (...) {
          capture_error();
        }
      });
    }
    // Trainer.
    workers.emplace_back([&] {
      std::uint64_t trained_here = 0;
      std::uint32_t since_ckpt = 0;
      try {
        for (;;) {
          const TimePoint qb = tracing ? Clock::now() : TimePoint{};
          auto batch = train_q.pop();
          if (!batch) break;
          if (tracing) {
            tracer->record(kSpanQueueWait, batch->batch_id, epoch32, qb,
                           Clock::now());
          }
          const TimePoint ts = Clock::now();
          const double loss = train_batch(*batch, stats);
          const TimePoint te = Clock::now();
          stats.train_seconds += to_seconds(te - ts);
          stage_done(h_train, rh_train, ts, te);
          if (tracing) {
            tracer->record(kSpanTrain, batch->batch_id, epoch32, ts, te);
          }
          trained_batches.fetch_add(1);
          // Advance the checkpoint cursor: with one sampler and one
          // extractor batches train strictly in order, so "count trained"
          // equals "index of the next untrained batch" and resume is
          // bit-exact; multi-worker runs reorder and resume approximately
          // (docs/recovery.md).
          ++trained_here;
          ++total_trained_;
          cursor_.store(start + trained_here);
          train_rng_();
          if (config_.record_batch_losses) stats.batch_losses.push_back(loss);
          if (auto item = release_q.push_or_reclaim(
                  ReleaseItem{batch->batch_id, std::move(batch->nodes)})) {
            feature_buffer_->release(item->nodes);  // epoch aborting; see above
          }
          if (ckpt_on && config_.ckpt.interval_batches > 0 &&
              ++since_ckpt >= config_.ckpt.interval_batches) {
            since_ckpt = 0;
            // A CrashInjected here propagates through capture_error like a
            // process death: queues close, the epoch aborts, and recovery
            // must cope with whatever the protocol left on disk.
            write_checkpoint(epoch, start + trained_here);
          }
        }
        release_q.close();
      } catch (...) {
        capture_error();
      }
    });
    // Releaser.
    workers.emplace_back([&] {
      try {
        while (auto item = release_q.pop()) {
          const TimePoint ts = Clock::now();
          feature_buffer_->release(item->nodes);
          const TimePoint te = Clock::now();
          stage_done(h_release, rh_release, ts, te);
          if (tracing) {
            tracer->record(kSpanRelease, item->batch_id, epoch32, ts, te);
          }
        }
      } catch (...) {
        capture_error();
      }
    });
  }

  // The queue-depth / standby / in-flight counter tracks that used to come
  // from a dedicated 5 ms monitor thread here now come from the leased
  // TimeSeriesSampler: every tick re-emits each registry gauge
  // (pipeline.*.depth, fb.standby, io.inflight, ...) as a trace counter
  // track while tracing is enabled.

  for (auto& t : samplers) t.join();
  extract_q.close();
  // The extractors drain the queue, then the trainer, then the releaser.
  if (!config_.common.sample_only) {
    for (std::size_t i = 0; i + 2 < workers.size(); ++i) workers[i].join();
    train_q.close();
    workers[workers.size() - 2].join();  // trainer (closes release_q)
    workers.back().join();               // releaser
  } else {
    workers[0].join();
  }
  if (gpu_ != nullptr) gpu_->sync();

  {
    std::lock_guard lk(err_mu);
    if (error) std::rethrow_exception(error);
  }

  // Epoch boundary: roll the cursor into the next epoch, or — when a stop
  // request drained the epoch early — leave it pointing at the first
  // untrained batch of this one, then take the boundary checkpoint.
  stats.interrupted = stop_requested_.load();
  if (!stats.interrupted) {
    cur_epoch_ = epoch + 1;
    cursor_.store(0);
  }
  if (ckpt_on && !config_.common.sample_only) {
    write_checkpoint(cur_epoch_, cursor_.load());
  }

  stats.epoch_seconds = to_seconds(Clock::now() - t0);
  stats.sample_seconds = static_cast<double>(sample_ns.load()) / 1e9;
  stats.extract_seconds = static_cast<double>(extract_ns.load()) / 1e9;
  stats.result.failed_batches = failed_batches.load();
  stats.result.trained_batches = trained_batches.load();
  stats.result.io_errors = io_errors.load();
  stats.result.io_retries = io_retries.load();
  stats.result.io_recovered = io_recovered.load();
  stats.result.io_timeouts = io_timeouts.load();
  const auto fill = [](StageLatency& s, const ConcurrentHistogram& h) {
    const LatencyHistogram lh = h.snapshot();
    s.count = lh.count();
    s.mean_us = lh.mean_us();
    s.p50_us = lh.percentile_us(0.50);
    s.p95_us = lh.percentile_us(0.95);
    s.p99_us = lh.percentile_us(0.99);
  };
  fill(stats.obs.sample, h_sample);
  fill(stats.obs.extract, h_extract);
  fill(stats.obs.train, h_train);
  fill(stats.obs.release, h_release);
  stats.obs.extract_q_max = extract_q.max_size();
  stats.obs.train_q_max = train_q.max_size();
  stats.obs.release_q_max = release_q.max_size();
  const FeatureBufferStats fb_after = feature_buffer_->stats();
  stats.obs.fb_hot_hits = fb_after.hot_hits - fb_before.hot_hits;
  stats.obs.fb_reuse_hits = fb_after.reuse_hits - fb_before.reuse_hits;
  stats.obs.fb_wait_hits = fb_after.wait_hits - fb_before.wait_hits;
  stats.obs.fb_loads = fb_after.loads - fb_before.loads;
  stats.obs.io_segments = io_segments.load();
  stats.obs.io_rows = io_rows.load();
  // Mean loss/accuracy over the batches that actually trained (identical to
  // dividing by n_batches on a clean epoch).
  const std::uint64_t denom =
      config_.common.sample_only ? n_batches : trained_batches.load();
  if (denom > 0) {
    stats.loss /= static_cast<double>(denom);
    stats.train_accuracy /= static_cast<double>(denom);
  }

  // Epoch-scoped bottleneck report: diagnose the epoch just run from its
  // bounding registry snapshots and publish it (structured "attribution"
  // event + the /attribution endpoint's latest report).
  if (reg != nullptr && attributor != nullptr) {
    attributor->publish(attributor->attribute(
        epoch_begin_snap, reg->snapshot(), stats.epoch_seconds,
        "epoch " + std::to_string(epoch)));
  }
  return stats;
}

double GnnDrive::evaluate() {
  return evaluate_accuracy(*model_, *ctx_.dataset, config_.common.sampler);
}

}  // namespace gnndrive
