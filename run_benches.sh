#!/bin/bash
# Regenerates every paper table/figure: runs each bench binary in turn.
# Usage: ./run_benches.sh [output-file]   (GNNDRIVE_BENCH_MODE=full for full sweeps)
#        ./run_benches.sh --faults [output-file]
#            fault-injection smoke mode: instead of the bench sweep, runs the
#            fault-tolerance soak suite (injected EIOs, latency spikes, stuck
#            requests, bad sectors) against the full pipeline.
#        ./run_benches.sh --trace [trace-json] [output-file]
#            observability mode: runs one traced GNNDrive epoch, writes a
#            Perfetto-loadable Chrome trace (default trace.json) plus the
#            metrics/latency summary (see docs/observability.md).
#        ./run_benches.sh --serve [output-file]
#            serving smoke mode: runs the online-inference load generator
#            (coalesced vs per-request closed loop, offered-load sweep,
#            serving under SSD faults) plus the serve test suites
#            (see docs/serving.md).
#        ./run_benches.sh --coalesce [output-file]
#            coalescing A/B mode: runs the coalesce=on/off extraction sweep
#            (SSD read requests, rows per read, extract p50/p95) plus the
#            coalescing differential/fault test suites (byte-identical
#            features, per-segment failure granularity, zero leaks).
#        ./run_benches.sh --ckpt [output-file]
#            crash-recovery mode: runs the checkpoint-overhead bench plus
#            the crash matrix (writer aborted at every protocol phase,
#            bit-exact resume), media-corruption fallback, serve hot-swap
#            and the kill-and-resume soak (see docs/recovery.md).
#        ./run_benches.sh --obs [output-file]
#            telemetry-plane smoke mode: runs the live-endpoint bench
#            (scrapes /metrics, /vars, /attribution and /readyz while a
#            train epoch and the serve engine run concurrently, writes
#            BENCH_obs.json) plus the sampler/exposition/attribution/SLO
#            test suites (see docs/observability.md).
#        ./run_benches.sh --cache [output-file]
#            cache-policy smoke mode: runs the lru/hotness/belady A/B sweep
#            (hit rate, ssd.reads across skew levels and buffer budgets)
#            plus the cache test suites (construction validation, pinned
#            hot-partition semantics, LRU property/fuzz, byte-identical
#            differential, checkpoint hot-set adoption).
#        ./run_benches.sh --layout [output-file]
#            feature-layout mode: runs the identity/degree/hotness packed-
#            store A/B sweep (direct, mmap and hot-prefetch ssd.reads, writes
#            BENCH_layout.json; fails if the best packed layout is < 2x or
#            any loss trajectory diverges), the offline compiler tool on a
#            plan file round-trip, and the Layout* test suites (plan
#            serialization fuzz, offset overflow bounds, compile rewrite
#            correctness, checkpoint fingerprint gating, cross-layout
#            differentials for train/serve/ginex/pygplus/marius).
if [ "$1" = "--layout" ]; then
  shift
  OUT="${1:-layout_sweep_output.txt}"
  : > "$OUT"
  {
    echo "############ feature-layout A/B (bench/layout_sweep + tools/layout_compile + Layout* suites) ############"
    timeout 580 build/bench/layout_sweep BENCH_layout.json 2>&1
    echo "[exit=$?]"
    timeout 580 build/tools/layout_compile papers100m hotness layout_plan.bin 2>&1
    echo "[exit=$?]"
    timeout 580 build/tests/gnndrive_tests --gtest_filter='Layout*' 2>&1
    echo "[exit=$?]"
    echo LAYOUT_SMOKE_DONE
  } >> "$OUT"
  exit 0
fi
if [ "$1" = "--obs" ]; then
  shift
  OUT="${1:-obs_smoke_output.txt}"
  : > "$OUT"
  {
    echo "############ telemetry-plane smoke (bench/obs_endpoint + obs suites) ############"
    timeout 580 build/bench/obs_endpoint BENCH_obs.json 2>&1
    echo "[exit=$?]"
    timeout 580 build/tests/gnndrive_tests \
      --gtest_filter='TimeSeries.*:HistogramWindowing.*:Exposition.*:Attribution.*:Slo.*:ObsServer.*:ObsPlaneFixture.*' 2>&1
    echo "[exit=$?]"
    echo OBS_SMOKE_DONE
  } >> "$OUT"
  exit 0
fi
if [ "$1" = "--cache" ]; then
  shift
  OUT="${1:-cache_policy_output.txt}"
  : > "$OUT"
  {
    echo "############ cache-policy A/B (bench/cache_policy + cache/LRU suites) ############"
    timeout 580 build/bench/cache_policy 2>&1
    echo "[exit=$?]"
    timeout 580 build/tests/gnndrive_tests \
      --gtest_filter='CacheValidation.*:CachePolicyFixture.*:HotPartition*.*:IndexedLruProperty.*' 2>&1
    echo "[exit=$?]"
    echo CACHE_SMOKE_DONE
  } >> "$OUT"
  exit 0
fi
if [ "$1" = "--ckpt" ]; then
  shift
  OUT="${1:-ckpt_recovery_output.txt}"
  : > "$OUT"
  {
    echo "############ crash recovery (bench/ckpt_overhead + Crc32c/Checkpoint/CkptPipeline/CkptSoak) ############"
    timeout 580 build/bench/ckpt_overhead 2>&1
    echo "[exit=$?]"
    timeout 580 build/tests/gnndrive_tests \
      --gtest_filter='Crc32c.*:Checkpoint.*:CkptPipeline.*:CkptSoak.*' 2>&1
    echo "[exit=$?]"
    echo CKPT_RECOVERY_DONE
  } >> "$OUT"
  exit 0
fi
if [ "$1" = "--coalesce" ]; then
  shift
  OUT="${1:-coalesce_ab_output.txt}"
  : > "$OUT"
  {
    echo "############ coalescing A/B (bench/coalesce_sweep + Coalesce* suites) ############"
    timeout 580 build/bench/coalesce_sweep 2>&1
    echo "[exit=$?]"
    timeout 580 build/tests/gnndrive_tests \
      --gtest_filter='Coalesce*:FeatureBufferBatchedApis.*' 2>&1
    echo "[exit=$?]"
    echo COALESCE_AB_DONE
  } >> "$OUT"
  exit 0
fi
if [ "$1" = "--serve" ]; then
  shift
  OUT="${1:-serve_smoke_output.txt}"
  : > "$OUT"
  {
    echo "############ serving smoke (bench/serve_latency + Serve* suites) ############"
    timeout 580 build/bench/serve_latency 2>&1
    echo "[exit=$?]"
    timeout 580 build/tests/gnndrive_tests \
      --gtest_filter='Serve*:FaultSoak.ServingUnder*' 2>&1
    echo "[exit=$?]"
    echo SERVE_SMOKE_DONE
  } >> "$OUT"
  exit 0
fi
if [ "$1" = "--trace" ]; then
  shift
  TRACE="${1:-trace.json}"
  OUT="${2:-trace_output.txt}"
  : > "$OUT"
  {
    echo "############ pipeline trace export ($TRACE) ############"
    timeout 580 build/bench/trace_pipeline "$TRACE" 2>&1
    echo "[exit=$?]"
    echo TRACE_EXPORT_DONE
  } >> "$OUT"
  exit 0
fi
if [ "$1" = "--faults" ]; then
  shift
  OUT="${1:-fault_smoke_output.txt}"
  : > "$OUT"
  {
    echo "############ fault-injection smoke (FaultSoak + SsdFaults + watchdog) ############"
    timeout 580 build/tests/gnndrive_tests \
      --gtest_filter='FaultSoak.*:SsdFaults.*:RingFixture.Watchdog*:RingFixture.Injected*' 2>&1
    echo "[exit=$?]"
    echo FAULT_SMOKE_DONE
  } >> "$OUT"
  exit 0
fi
OUT="${1:-bench_output.txt}"
: > "$OUT"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in *.cmake|*CTest*|*.a) continue;; esac
  {
    echo
    echo "############ $b ############"
    timeout 580 "$b" 2>&1
    echo "[exit=$?]"
  } >> "$OUT"
done
echo BENCH_SUITE_DONE >> "$OUT"
