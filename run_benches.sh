#!/bin/bash
# Regenerates every paper table/figure: runs each bench binary in turn.
# Usage: ./run_benches.sh [output-file]   (GNNDRIVE_BENCH_MODE=full for full sweeps)
OUT="${1:-bench_output.txt}"
: > "$OUT"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in *.cmake|*CTest*|*.a) continue;; esac
  {
    echo
    echo "############ $b ############"
    timeout 580 "$b" 2>&1
    echo "[exit=$?]"
  } >> "$OUT"
done
echo BENCH_SUITE_DONE >> "$OUT"
